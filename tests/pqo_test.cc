// Copyright 2026 mpqopt authors.

#include "optimizer/pqo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/generator.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

TEST(AffineCostTest, Evaluation) {
  const AffineCost c{10, 4};
  EXPECT_DOUBLE_EQ(c.At(0), 10);
  EXPECT_DOUBLE_EQ(c.At(0.5), 12);
  EXPECT_DOUBLE_EQ(c.At(1), 14);
}

TEST(AffineCostTest, PlusAndScale) {
  const AffineCost sum = AffineCost{1, 2}.Plus({10, 20});
  EXPECT_DOUBLE_EQ(sum.constant, 11);
  EXPECT_DOUBLE_EQ(sum.slope, 22);
  const AffineCost scaled = AffineCost{3, 4}.Scaled(2);
  EXPECT_DOUBLE_EQ(scaled.constant, 6);
  EXPECT_DOUBLE_EQ(scaled.slope, 8);
}

TEST(LowerEnvelopeTest, SingleLine) {
  EXPECT_EQ(LowerEnvelope({{5, 1}}), (std::vector<size_t>{0}));
}

TEST(LowerEnvelopeTest, DominatedLineDropped) {
  // Line 1 is above line 0 everywhere on [0, 1].
  const std::vector<size_t> keep = LowerEnvelope({{1, 1}, {3, 1}});
  EXPECT_EQ(keep, (std::vector<size_t>{0}));
}

TEST(LowerEnvelopeTest, CrossingLinesBothKept) {
  // Cross at theta = 0.5.
  const std::vector<size_t> keep = LowerEnvelope({{0, 2}, {1, 0}});
  EXPECT_EQ(keep, (std::vector<size_t>{0, 1}));
}

TEST(LowerEnvelopeTest, CrossingOutsideRangeDropped) {
  // Lines cross at theta = 2 — outside [0, 1]; only the lower one stays.
  const std::vector<size_t> keep = LowerEnvelope({{0, 1}, {2, 0}});
  EXPECT_EQ(keep, (std::vector<size_t>{0}));
}

TEST(LowerEnvelopeTest, MiddleLineOfThree) {
  // Steep-down, shallow, steep-up arrangement where all three touch the
  // envelope: {4,-4} wins early, {1.5,0} in the middle, {0,4}... at 0:
  // values 4, 1.5, 0 -> line 2 wins at 0; at 1: 0, 1.5, 4 -> line 0 wins.
  // Middle line wins around theta=0.5: values 2, 1.5, 2.
  const std::vector<size_t> keep =
      LowerEnvelope({{4, -4}, {1.5, 0}, {0, 4}});
  EXPECT_EQ(keep, (std::vector<size_t>{0, 1, 2}));
}

TEST(LowerEnvelopeTest, EnvelopeMinimalityBruteForce) {
  // Every kept line must be the strict-or-tied minimum somewhere; every
  // dropped line must never be the unique minimum.
  const std::vector<AffineCost> lines = {{3, 0},  {0, 5},   {5, -4},
                                         {2, 1},  {10, -3}, {1, 3},
                                         {4, -1}, {2.5, 0.2}};
  const std::vector<size_t> keep = LowerEnvelope(lines);
  std::vector<bool> kept(lines.size(), false);
  for (size_t i : keep) kept[i] = true;
  for (double theta = 0; theta <= 1.0 + 1e-12; theta += 1.0 / 512) {
    double best = std::numeric_limits<double>::infinity();
    for (const AffineCost& line : lines) best = std::min(best, line.At(theta));
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].At(theta) < best - 1e-9) {
        ADD_FAILURE() << "line below envelope?";
      }
      if (!kept[i]) {
        EXPECT_GE(lines[i].At(theta), best - 1e-9)
            << "dropped line " << i << " wins at " << theta;
      }
    }
  }
}

TEST(PqoTest, EnvelopeMatchesPointwiseOptimization) {
  // The parametric result evaluated at any theta must match running the
  // DP on the concrete query instance with that theta's cardinality.
  const Query base = RandomQuery(6, 201);
  PqoConfig config;
  config.space = PlanSpace::kLinear;
  config.parametric_table = 0;
  config.variability = 9.0;
  StatusOr<PqoResult> result =
      RunParametricDp(base, ConstraintSet::None(PlanSpace::kLinear), config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().plans.empty());

  for (double theta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Envelope value at theta.
    double envelope = std::numeric_limits<double>::infinity();
    for (const PqoPlan& plan : result.value().plans) {
      envelope = std::min(envelope, plan.cost.At(theta));
    }
    // Brute-force: instantiate the query at this theta and run the same
    // affine DP with variability 0 (equivalent to a concrete optimizer
    // restricted to BNL/HJ with the smooth block model).
    std::vector<TableInfo> tables(base.tables());
    tables[0].cardinality *= (1 + config.variability * theta);
    const Query concrete(std::move(tables), base.predicates());
    PqoConfig concrete_config = config;
    concrete_config.variability = 0;
    StatusOr<PqoResult> point = RunParametricDp(
        concrete, ConstraintSet::None(PlanSpace::kLinear), concrete_config);
    ASSERT_TRUE(point.ok());
    ASSERT_EQ(point.value().plans.size(), 1u);
    EXPECT_NEAR(envelope / point.value().plans[0].cost.At(0), 1.0, 1e-9)
        << "theta=" << theta;
  }
}

TEST(PqoTest, IntervalsPartitionZeroOne) {
  const Query q = RandomQuery(7, 203);
  PqoConfig config;
  config.space = PlanSpace::kBushy;
  config.parametric_table = 1;
  StatusOr<PqoResult> result =
      RunParametricDp(q, ConstraintSet::None(PlanSpace::kBushy), config);
  ASSERT_TRUE(result.ok());
  double next = 0;
  for (const PqoPlan& plan : result.value().plans) {
    EXPECT_DOUBLE_EQ(plan.theta_begin, next);
    EXPECT_GE(plan.theta_end, plan.theta_begin);
    next = plan.theta_end;
  }
  EXPECT_DOUBLE_EQ(next, 1.0);
}

TEST(PqoTest, ZeroVariabilityYieldsSinglePlan) {
  const Query q = RandomQuery(6, 205);
  PqoConfig config;
  config.space = PlanSpace::kLinear;
  config.variability = 0;
  StatusOr<PqoResult> result =
      RunParametricDp(q, ConstraintSet::None(PlanSpace::kLinear), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().plans.size(), 1u);
}

TEST(PqoTest, ParallelMatchesSerialEnvelope) {
  // The paper's claim, third instantiation: partition-optimal envelopes
  // merged at the master equal the serial parametric optimum.
  const Query q = RandomQuery(8, 207);
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    PqoConfig config;
    config.space = space;
    config.parametric_table = 2;
    StatusOr<PqoResult> serial =
        RunParametricDp(q, ConstraintSet::None(space), config);
    ASSERT_TRUE(serial.ok());
    const uint64_t m = space == PlanSpace::kLinear ? 8 : 4;
    StatusOr<PqoResult> parallel = ParallelParametricOptimize(q, m, config);
    ASSERT_TRUE(parallel.ok());
    for (double theta : {0.0, 0.3, 0.6, 1.0}) {
      double serial_best = std::numeric_limits<double>::infinity();
      for (const PqoPlan& p : serial.value().plans) {
        serial_best = std::min(serial_best, p.cost.At(theta));
      }
      double parallel_best = std::numeric_limits<double>::infinity();
      for (const PqoPlan& p : parallel.value().plans) {
        parallel_best = std::min(parallel_best, p.cost.At(theta));
      }
      EXPECT_NEAR(parallel_best / serial_best, 1.0, 1e-9)
          << PlanSpaceName(space) << " theta=" << theta;
    }
  }
}

TEST(PqoTest, HighVariabilityProducesPlanSwitches) {
  // With a 100x cardinality swing, the optimal plan should change across
  // the parameter range for at least some seeds.
  int switches_seen = 0;
  for (uint64_t seed = 300; seed < 310; ++seed) {
    const Query q = RandomQuery(6, seed);
    PqoConfig config;
    config.space = PlanSpace::kBushy;
    config.variability = 99.0;
    StatusOr<PqoResult> result =
        RunParametricDp(q, ConstraintSet::None(PlanSpace::kBushy), config);
    ASSERT_TRUE(result.ok());
    if (result.value().plans.size() > 1) ++switches_seen;
  }
  EXPECT_GT(switches_seen, 0);
}

TEST(PqoTest, RejectsBadParametricTable) {
  const Query q = RandomQuery(4, 211);
  PqoConfig config;
  config.parametric_table = 99;
  EXPECT_FALSE(
      RunParametricDp(q, ConstraintSet::None(PlanSpace::kLinear), config)
          .ok());
}

TEST(PqoTest, SingleTableQuery) {
  const Query q = RandomQuery(1, 213);
  PqoConfig config;
  StatusOr<PqoResult> result =
      RunParametricDp(q, ConstraintSet::None(PlanSpace::kLinear), config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().plans.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value().plans[0].theta_begin, 0);
  EXPECT_DOUBLE_EQ(result.value().plans[0].theta_end, 1);
}

}  // namespace
}  // namespace mpqopt
