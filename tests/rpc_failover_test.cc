// Copyright 2026 mpqopt authors.
//
// Failover tests of the cluster supervision subsystem
// (cluster/supervisor/worker_supervisor.h + RpcBackend round recovery):
// workers are SIGKILLed mid-round, crashed deterministically via the
// --chaos-kill-after axis, restarted on their old ports, and drained
// with SIGTERM — and in every survivable scenario the rounds must still
// complete with results byte-identical to a failure-free run, with the
// recovery visible in the health/ServiceStats counters instead of in
// round errors.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "catalog/generator.h"
#include "cluster/rpc_backend.h"
#include "cluster/session/session.h"
#include "cluster/session/stateful_task.h"
#include "cluster/supervisor/worker_supervisor.h"
#include "cluster/task_registry.h"
#include "common/serialize.h"
#include "mpq/mpq.h"
#include "plan/plan_serde.h"
#include "service/optimizer_service.h"
#include "sma/sma.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

Query MakeQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

/// Fast-recovery supervision knobs so the tests spend milliseconds, not
/// seconds, in backoff windows.
BackendOptions FastFailoverOptions(const RpcWorkerFarm& farm,
                                   int retries = 2) {
  BackendOptions options;
  options.workers_addr = farm.workers_addr();
  options.worker_retries = retries;
  options.worker_backoff_ms = 20;
  options.worker_backoff_max_ms = 200;
  return options;
}

std::shared_ptr<ExecutionBackend> ConnectFarm(const RpcWorkerFarm& farm,
                                              int retries = 2) {
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, FastFailoverOptions(farm, retries));
  MPQOPT_CHECK(backend.ok());
  return std::move(backend).value();
}

/// The canonical wire bytes of a result's winning plan(s) — the
/// "byte-identical plans" comparison of the acceptance criteria.
std::vector<uint8_t> PlanBytes(const MpqResult& result) {
  ByteWriter writer;
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.Release();
}

// (The backoff/redial-budget arithmetic is unit-tested directly, without
// sockets, in tests/supervisor_test.cc.)

TEST(WorkerSupervisorTest, PingTaskIsRegistered) {
  EXPECT_EQ(ResolveTaskKind(WorkerTask(&PingTaskMain)),
            RpcTaskKind::kPingTask);
  const std::vector<uint8_t> nonce = {1, 2, 3, 4};
  StatusOr<std::vector<uint8_t>> reply =
      TaskForKind(RpcTaskKind::kPingTask)(nonce);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), nonce);
}

TEST(RpcFailoverTest, KilledWorkerMidRoundIsRescatteredToSurvivors) {
  RpcWorkerFarm farm;
  farm.Start(4);
  auto backend = ConnectFarm(farm);
  // 8 sleep-echo tasks of 300 ms each: two sequential tasks per worker,
  // so the round is guaranteed to still be in flight when worker 0 dies
  // at ~100 ms.
  std::vector<WorkerTask> tasks(8, WorkerTask(&SleepEchoTaskMain));
  std::vector<std::vector<uint8_t>> requests;
  std::vector<std::vector<uint8_t>> expected;
  for (uint8_t i = 0; i < 8; ++i) {
    ByteWriter writer;
    writer.WriteU32(300);
    std::vector<uint8_t> request = writer.Release();
    request.push_back(i);
    requests.push_back(request);
    expected.push_back({i});
  }
  std::thread killer([&farm]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    farm.Kill(0);
  });
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  killer.join();
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().responses, expected);
  const BackendHealth health = backend->health();
  EXPECT_GE(health.tasks_rescattered, 1u);
  EXPECT_EQ(health.rounds_recovered, 1u);
  EXPECT_GE(health.reconnect_attempts, 1u);
  EXPECT_EQ(health.CountWorkers(WorkerHealth::kHealthy), 3u);
}

// The acceptance scenario: an OptimizerService over N=4 remote workers,
// one of which crashes mid-round (deterministically, via the chaos
// axis); every query must still complete, the served plans must be
// byte-identical to a failure-free in-process run, and ServiceStats must
// report the reconnect attempts and re-scattered tasks.
TEST(RpcFailoverTest, ServicePlansAreByteIdenticalUnderWorkerCrash) {
  RpcWorkerFarm farm;
  farm.Start(3);
  // The fourth worker serves 3 task requests, then crashes WITHOUT
  // replying — in the middle of whichever round its third task lands in.
  farm.StartChaos(3);

  ServiceOptions service_opts;
  service_opts.backend = ConnectFarm(farm);
  service_opts.dispatcher_threads = 2;
  OptimizerService service(service_opts);

  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    queries.push_back(MakeQuery(7, 400 + seed));
  }
  const BatchReport report = service.OptimizeBatch(queries, opts);
  ASSERT_EQ(report.results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(report.results[i].ok())
        << "query " << i << ": " << report.results[i].status().ToString();
    // Reference: the same query on the default in-process backend — the
    // conformance suite guarantees backends agree, so any divergence
    // here is recovery corrupting a round.
    MpqOptimizer reference(opts);
    StatusOr<MpqResult> direct = reference.Optimize(queries[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(PlanBytes(report.results[i].value()),
              PlanBytes(direct.value()))
        << "query " << i << " plan bytes diverged after failover";
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_GE(stats.tasks_rescattered, 1u);
  EXPECT_GE(stats.rounds_recovered, 1u);
  EXPECT_GE(stats.worker_reconnect_attempts, 1u);
  ASSERT_EQ(stats.workers.size(), 4u);
  // The crashed worker burns its redial budget (nothing listens on its
  // port anymore) and goes DEAD; redials happen lazily in scatter
  // passes once the backoff expires, so drive rounds until the state
  // machine settles. The three survivors stay healthy throughout.
  auto backend = service.shared_backend();
  for (int r = 0;
       r < 100 && backend->health().CountWorkers(WorkerHealth::kDead) == 0;
       ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(
        backend->RunRound({WorkerTask(&EchoTaskMain)}, {{1}}).ok());
  }
  const ServiceStats settled = service.stats();
  EXPECT_EQ(settled.workers[3].health, WorkerHealth::kDead);
  for (size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(settled.workers[w].health, WorkerHealth::kHealthy)
        << "worker " << w;
  }
  EXPECT_EQ(farm.WaitExit(3), 42);  // the chaos exit code, not a signal
}

TEST(RpcFailoverTest, RestartedWorkerIsReconnectedAndServesAgain) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  std::vector<WorkerTask> tasks(4, WorkerTask(&EchoTaskMain));
  std::vector<std::vector<uint8_t>> requests = {{1}, {2}, {3}, {4}};
  ASSERT_TRUE(backend->RunRound(tasks, requests).ok());

  farm.Kill(0);
  farm.Restart(0);
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().responses, requests);

  const BackendHealth health = backend->health();
  EXPECT_GE(health.reconnects, 1u);
  EXPECT_EQ(health.CountWorkers(WorkerHealth::kHealthy), 2u);
  ASSERT_EQ(health.workers.size(), 2u);
  EXPECT_GE(health.workers[0].reconnects, 1u);
}

TEST(RpcFailoverTest, RedialBudgetExhaustionMarksTheWorkerDead) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm, /*retries=*/1);
  farm.Kill(0);
  std::vector<WorkerTask> tasks(2, WorkerTask(&EchoTaskMain));
  std::vector<std::vector<uint8_t>> requests = {{1}, {2}};
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const BackendHealth health = backend->health();
  EXPECT_EQ(health.CountWorkers(WorkerHealth::kDead), 1u);
  ASSERT_EQ(health.workers.size(), 2u);
  EXPECT_EQ(health.workers[0].health, WorkerHealth::kDead);
  EXPECT_EQ(health.workers[0].redial_failures, 1u);
}

TEST(RpcFailoverTest, AllWorkersDeadFailsTheRoundWithABoundedError) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  farm.Kill(0);
  const auto start = std::chrono::steady_clock::now();
  StatusOr<RoundResult> round =
      backend->RunRound({WorkerTask(&EchoTaskMain)}, {{1}});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("dead"), std::string::npos);
  EXPECT_LT(elapsed, 20.0);
  // Later rounds fail fast too — nothing is dialed once everyone is DEAD.
  EXPECT_FALSE(backend->RunRound({WorkerTask(&EchoTaskMain)}, {{1}}).ok());
}

TEST(RpcFailoverTest, SigtermDrainsTheInFlightTaskAndExitsZero) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  // A 700 ms task is in flight when SIGTERM lands: the worker must
  // execute and ANSWER it before exiting 0 — the round sees no failure
  // at all.
  ByteWriter writer;
  writer.WriteU32(700);
  std::vector<uint8_t> request = writer.Release();
  request.push_back(9);
  StatusOr<RoundResult> round = Status::Internal("round never ran");
  std::thread driver([&backend, &request, &round]() {
    round = backend->RunRound({WorkerTask(&SleepEchoTaskMain)}, {request});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const int exit_status = farm.Terminate(0);
  driver.join();
  EXPECT_EQ(exit_status, 0) << "worker did not shut down cleanly";
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().responses[0], std::vector<uint8_t>{9});
}

/// SMA result bytes, for byte-identity assertions after session
/// recovery.
std::vector<uint8_t> SmaPlanBytes(const SmaResult& result) {
  ByteWriter writer;
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.Release();
}

// Session failover, SMA end to end: one of two workers crashes
// DETERMINISTICALLY mid-query (chaos axis; session frames count against
// the budget) and never comes back. Its memo replicas must migrate to
// the survivor via re-open + broadcast replay, and the finished plan
// must be byte-identical to a failure-free in-process run.
TEST(RpcFailoverTest, SmaSessionsMigrateOffACrashedWorkerMidQuery) {
  RpcWorkerFarm farm;
  farm.Start(1);
  farm.StartChaos(8);  // dies without replying during the query

  SmaOptions base;
  base.space = PlanSpace::kLinear;
  base.num_workers = 4;
  const Query q = MakeQuery(10, 500);
  StatusOr<SmaResult> reference = SmaOptimize(q, base);
  ASSERT_TRUE(reference.ok());

  SmaOptions over_rpc = base;
  over_rpc.backend = ConnectFarm(farm);
  StatusOr<SmaResult> result = SmaOptimize(q, over_rpc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SmaPlanBytes(result.value()), SmaPlanBytes(reference.value()));
  EXPECT_EQ(result.value().rounds, reference.value().rounds);

  const BackendHealth health = over_rpc.backend->health();
  EXPECT_GE(health.sessions.sessions_recovered, 1u);
  EXPECT_EQ(health.sessions.sessions_failed, 0u);
  EXPECT_EQ(farm.WaitExit(1), 42);  // the chaos exit code, not a signal
}

// Session failover, the unsurvivable case: the ONLY worker is SIGKILLed
// mid-session. The session must fail deterministically (bounded time,
// no hang); after a worker restart, its state is gone (a fresh process
// holds no replicas) and a NEW backend + session serves normally.
TEST(RpcFailoverTest, KilledOnlyWorkerFailsTheSessionAndRestartIsFresh) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm, /*retries=*/1);
  StatusOr<std::unique_ptr<SessionHandle>> session =
      backend->OpenSession(StatefulTaskKind::kAccumulator,
                           {std::vector<uint8_t>{'a'}});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()
                  ->Broadcast({kAccumulatorAppendOp, 'b'})
                  .ok());
  farm.Kill(0);
  const auto start = std::chrono::steady_clock::now();
  StatusOr<RoundResult> round =
      session.value()->Step({{kAccumulatorPeekOp}});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(round.ok());
  EXPECT_LT(elapsed, 20.0);
  // Sticky: the session stays failed even if the worker comes back.
  farm.Restart(0);
  EXPECT_FALSE(session.value()->Step({{kAccumulatorPeekOp}}).ok());
  EXPECT_GE(backend->health().sessions.sessions_failed, 1u);

  // The restarted worker holds no stale state and serves fresh sessions.
  auto fresh_backend = ConnectFarm(farm);
  StatusOr<std::unique_ptr<SessionHandle>> fresh =
      fresh_backend->OpenSession(StatefulTaskKind::kAccumulator,
                                 {std::vector<uint8_t>{'z'}});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  StatusOr<RoundResult> peek = fresh.value()->Step({{kAccumulatorPeekOp}});
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek.value().responses[0], std::vector<uint8_t>{'z'});
}

TEST(RpcFailoverTest, SigtermOnIdleWorkerExitsZeroPromptly) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  ASSERT_TRUE(backend->RunRound({WorkerTask(&EchoTaskMain)}, {{7}}).ok());
  const auto start = std::chrono::steady_clock::now();
  const int exit_status = farm.Terminate(0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(exit_status, 0);
  EXPECT_LT(elapsed, 5.0);
}

}  // namespace
}  // namespace mpqopt
