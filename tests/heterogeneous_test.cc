// Copyright 2026 mpqopt authors.

#include "mpq/heterogeneous.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "optimizer/dp.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

TEST(AssignPartitionsTest, EqualSpeedsEqualShares) {
  const auto shares = AssignPartitions({1, 1, 1, 1}, 16);
  ASSERT_EQ(shares.size(), 4u);
  for (const PartitionShare& share : shares) EXPECT_EQ(share.size(), 4u);
}

TEST(AssignPartitionsTest, ProportionalToSpeed) {
  const auto shares = AssignPartitions({3, 1}, 16);
  EXPECT_EQ(shares[0].size(), 12u);
  EXPECT_EQ(shares[1].size(), 4u);
}

TEST(AssignPartitionsTest, SharesContiguousDisjointAndComplete) {
  const auto shares = AssignPartitions({2.5, 1.0, 0.5, 4.0}, 32);
  uint64_t next = 0;
  uint64_t total = 0;
  for (const PartitionShare& share : shares) {
    EXPECT_EQ(share.begin, next);
    next = share.end;
    total += share.size();
  }
  EXPECT_EQ(next, 32u);
  EXPECT_EQ(total, 32u);
}

TEST(AssignPartitionsTest, VerySlowWorkerMayGetNothing) {
  const auto shares = AssignPartitions({100, 0.001}, 4);
  EXPECT_EQ(shares[0].size(), 4u);
  EXPECT_EQ(shares[1].size(), 0u);
}

TEST(AssignPartitionsTest, RemaindersDistributed) {
  // 7 partitions over 3 equal workers: 3/2/2 (largest remainder).
  const auto shares = AssignPartitions({1, 1, 1}, 7);
  uint64_t total = 0;
  for (const PartitionShare& share : shares) {
    total += share.size();
    EXPECT_GE(share.size(), 2u);
    EXPECT_LE(share.size(), 3u);
  }
  EXPECT_EQ(total, 7u);
}

TEST(HeteroMpqTest, FindsSerialOptimum) {
  const Query q = RandomQuery(10, 101);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 32;  // plan-space partitions
  HeteroMpqOptimizer mpq(opts, {4.0, 2.0, 1.0, 1.0});
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(
      result.value().arena.node(result.value().best[0]).cost.time(),
      serial.value().arena.node(serial.value().best[0]).cost.time());
}

TEST(HeteroMpqTest, MatchesHomogeneousMpq) {
  const Query q = RandomQuery(10, 103);
  MpqOptions opts;
  opts.space = PlanSpace::kBushy;
  opts.num_workers = 8;
  MpqOptimizer homo(opts);
  HeteroMpqOptimizer hetero(opts, {1.0, 3.0});
  StatusOr<MpqResult> a = homo.Optimize(q);
  StatusOr<MpqResult> b = hetero.Optimize(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value().arena.node(a.value().best[0]).cost.time(),
                   b.value().arena.node(b.value().best[0]).cost.time());
}

TEST(HeteroMpqTest, OneTaskPerPhysicalWorker) {
  const Query q = RandomQuery(8, 105);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 16;
  HeteroMpqOptimizer mpq(opts, {2.0, 1.0, 1.0});
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  // 3 physical workers -> 3 requests + 3 responses on the wire.
  EXPECT_EQ(result.value().network_messages, 6u);
  EXPECT_EQ(result.value().worker_seconds.size(), 3u);
}

TEST(HeteroMpqTest, ProportionalAssignmentBalancesSimulatedTime) {
  // With shares proportional to speed, scaled per-worker times should be
  // within a small factor of each other; with uniform shares on the same
  // (heterogeneous) cluster, the slow worker dominates.
  const Query q = RandomQuery(12, 107);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 64;
  const std::vector<double> speeds = {4.0, 1.0};
  HeteroMpqOptimizer mpq(opts, speeds);
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  const auto& seconds = result.value().worker_seconds;
  ASSERT_EQ(seconds.size(), 2u);
  // 4x-speed worker got 4x the partitions: scaled times comparable.
  EXPECT_LT(std::max(seconds[0], seconds[1]),
            3.0 * std::min(seconds[0], seconds[1]));
}

TEST(HeteroMpqTest, MultiObjectiveRange) {
  const Query q = RandomQuery(8, 109);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 1.0;
  opts.num_workers = 8;
  HeteroMpqOptimizer hetero(opts, {1.0, 2.0});
  MpqOptimizer homo(opts);
  StatusOr<MpqResult> a = hetero.Optimize(q);
  StatusOr<MpqResult> b = homo.Optimize(q);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same merged frontier size and same best-time plan.
  EXPECT_EQ(a.value().best.size(), b.value().best.size());
}

TEST(HeteroMpqTest, RejectsNonPowerOfTwoPartitions) {
  const Query q = RandomQuery(8, 111);
  MpqOptions opts;
  opts.num_workers = 6;
  HeteroMpqOptimizer mpq(opts, {1.0, 1.0});
  EXPECT_FALSE(mpq.Optimize(q).ok());
}

TEST(HeteroMpqTest, WorkerMainRejectsGarbage) {
  std::vector<uint8_t> garbage(40, 0xEE);
  EXPECT_FALSE(HeteroMpqOptimizer::WorkerMain(garbage).ok());
}

}  // namespace
}  // namespace mpqopt
