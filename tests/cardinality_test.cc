// Copyright 2026 mpqopt authors.

#include "cost/cardinality.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"

namespace mpqopt {
namespace {

Query ThreeTableChain() {
  std::vector<TableInfo> tables(3);
  tables[0].cardinality = 100;
  tables[1].cardinality = 200;
  tables[2].cardinality = 400;
  for (auto& t : tables) t.attribute_domains = {10.0};
  std::vector<JoinPredicate> preds;
  preds.push_back({0, 0, 1, 0, 0.01});
  preds.push_back({1, 0, 2, 0, 0.5});
  return Query(std::move(tables), std::move(preds));
}

TEST(CardinalityTest, SingleTable) {
  const Query q = ThreeTableChain();
  CardinalityEstimator est(q);
  EXPECT_DOUBLE_EQ(est.Cardinality(TableSet::Single(0)), 100);
  EXPECT_DOUBLE_EQ(est.Cardinality(TableSet::Single(2)), 400);
}

TEST(CardinalityTest, JoinAppliesSelectivity) {
  const Query q = ThreeTableChain();
  CardinalityEstimator est(q);
  // 100 * 200 * 0.01
  EXPECT_DOUBLE_EQ(est.Cardinality(TableSet::Single(0).With(1)), 200);
}

TEST(CardinalityTest, CrossProductHasNoSelectivity) {
  const Query q = ThreeTableChain();
  CardinalityEstimator est(q);
  // Tables 0 and 2 are not connected: 100 * 400.
  EXPECT_DOUBLE_EQ(est.Cardinality(TableSet::Single(0).With(2)), 40000);
}

TEST(CardinalityTest, FullJoinAppliesAllPredicates) {
  const Query q = ThreeTableChain();
  CardinalityEstimator est(q);
  // 100 * 200 * 400 * 0.01 * 0.5
  EXPECT_DOUBLE_EQ(est.Cardinality(TableSet::AllTables(3)), 40000);
}

TEST(CardinalityTest, ClampedAtOneRow) {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = 10;
  tables[1].cardinality = 10;
  for (auto& t : tables) t.attribute_domains = {1000.0};
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0, 0.001}};
  const Query q(std::move(tables), std::move(preds));
  CardinalityEstimator est(q);
  // 10 * 10 * 0.001 = 0.1 -> clamped to 1.
  EXPECT_DOUBLE_EQ(est.Cardinality(TableSet::AllTables(2)), 1.0);
}

TEST(CardinalityTest, ConnectingSelectivity) {
  const Query q = ThreeTableChain();
  CardinalityEstimator est(q);
  EXPECT_DOUBLE_EQ(
      est.ConnectingSelectivity(TableSet::Single(0), TableSet::Single(1)),
      0.01);
  EXPECT_DOUBLE_EQ(
      est.ConnectingSelectivity(TableSet::Single(0), TableSet::Single(2)),
      1.0);
  // Both predicates cross the cut {1} vs {0,2}.
  EXPECT_DOUBLE_EQ(est.ConnectingSelectivity(TableSet::Single(1),
                                             TableSet::Single(0).With(2)),
                   0.01 * 0.5);
}

TEST(CardinalityTest, Connected) {
  const Query q = ThreeTableChain();
  CardinalityEstimator est(q);
  EXPECT_TRUE(est.Connected(TableSet::Single(0), TableSet::Single(1)));
  EXPECT_FALSE(est.Connected(TableSet::Single(0), TableSet::Single(2)));
  EXPECT_TRUE(
      est.Connected(TableSet::Single(0).With(1), TableSet::Single(2)));
}

TEST(CardinalityTest, CardinalityDecomposesOverCuts) {
  // |L ∪ R| == |L| * |R| * sel(L, R) for any disjoint L, R — the identity
  // the DP's cost computation relies on.
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, 99);
  const Query q = gen.Generate(8);
  CardinalityEstimator est(q);
  const TableSet all = q.all_tables();
  SubsetEnumerator it(all);
  while (it.Next()) {
    const TableSet left = it.current();
    const TableSet right = all.Minus(left);
    const double joint = est.Cardinality(all);
    const double split = est.Cardinality(left) * est.Cardinality(right) *
                         est.ConnectingSelectivity(left, right);
    // The clamp to >= 1 row may break the identity for tiny results, so
    // only check when well above the clamp.
    if (split > 10) {
      EXPECT_NEAR(joint / split, 1.0, 1e-9) << left.ToString();
    }
  }
}

TEST(CardinalityTest, MonotoneInTableCardinality) {
  std::vector<TableInfo> small(2), large(2);
  small[0].cardinality = 100;
  small[1].cardinality = 100;
  large[0].cardinality = 1000;
  large[1].cardinality = 100;
  for (auto* tv : {&small, &large}) {
    for (auto& t : *tv) t.attribute_domains = {10.0};
  }
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0, 0.1}};
  const Query qs(std::move(small), preds);
  const Query ql(std::move(large), preds);
  EXPECT_LT(CardinalityEstimator(qs).Cardinality(TableSet::AllTables(2)),
            CardinalityEstimator(ql).Cardinality(TableSet::AllTables(2)));
}

}  // namespace
}  // namespace mpqopt
