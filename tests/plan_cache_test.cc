// Copyright 2026 mpqopt authors.
//
// Plan-cache subsystem correctness (acceptance gate of the plan-cache
// PR): a hit returns a plan equal to a fresh optimization; full-key
// equality rejects forced hash collisions; TTL, byte-budget, and
// statistics-epoch evictions fire; InvalidateWhere evicts exactly the
// dependent entries; and concurrent misses on one fingerprint optimize
// exactly once (single-flight).

#include "plancache/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "catalog/generator.h"
#include "cluster/async_batch_backend.h"
#include "plancache/fingerprint.h"
#include "service/optimizer_service.h"

namespace mpqopt {
namespace {

Query MakeQuery(int tables, uint64_t seed,
                JoinGraphShape shape = JoinGraphShape::kStar) {
  GeneratorOptions opts;
  opts.shape = shape;
  QueryGenerator gen(opts, seed);
  return gen.Generate(tables);
}

/// A tiny one-node plan with a recognizable cardinality, for direct
/// PlanCache tests that never run the optimizer.
CachedPlan MakeMarkerPlan(double cardinality) {
  CachedPlan plan;
  plan.best.push_back(
      plan.arena.MakeScan(0, cardinality, CostVector::Scalar(cardinality)));
  return plan;
}

PlanCacheKey MakeRawKey(std::vector<uint8_t> bytes) {
  PlanCacheKey key;
  key.bytes = std::move(bytes);
  key.hash_hi = HashBytes64(key.bytes.data(), key.bytes.size(), 1);
  key.hash_lo = HashBytes64(key.bytes.data(), key.bytes.size(), 2);
  return key;
}

// ------------------------------------------------------------ fingerprint

TEST(FingerprintTest, DeterministicAndSensitive) {
  const Query query = MakeQuery(8, 11);
  MpqOptions opts;
  opts.num_workers = 8;

  const PlanCacheKey a = FingerprintQuery(query, opts);
  const PlanCacheKey b = FingerprintQuery(query, opts);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash_hi, b.hash_hi);
  EXPECT_EQ(a.hash_lo, b.hash_lo);

  // Every plan-affecting option must perturb the fingerprint.
  MpqOptions changed = opts;
  changed.space = PlanSpace::kBushy;
  EXPECT_NE(FingerprintQuery(query, changed), a);
  changed = opts;
  changed.objective = Objective::kTimeAndBuffer;
  EXPECT_NE(FingerprintQuery(query, changed), a);
  changed = opts;
  changed.alpha = 2.0;
  EXPECT_NE(FingerprintQuery(query, changed), a);
  changed = opts;
  changed.interesting_orders = true;
  EXPECT_NE(FingerprintQuery(query, changed), a);
  changed = opts;
  changed.num_workers = 16;
  EXPECT_NE(FingerprintQuery(query, changed), a);
  changed = opts;
  changed.cost_options.hash_constant = 7.5;
  EXPECT_NE(FingerprintQuery(query, changed), a);

  // Execution-only knobs must NOT perturb it: the same plan serves any
  // backend or thread count.
  changed = opts;
  changed.max_threads = 7;
  changed.network.latency_s = 123.0;
  EXPECT_EQ(FingerprintQuery(query, changed), a);

  // A different query (same generator, next draw) must differ.
  GeneratorOptions gen_opts;
  QueryGenerator gen(gen_opts, 11);
  gen.Generate(8);  // skip the first draw == `query`
  const Query other = gen.Generate(8);
  EXPECT_NE(FingerprintQuery(other, opts), a);
}

// ------------------------------------------- hit equals fresh optimization

TEST(PlanCacheServiceTest, HitReturnsPlanEqualToFreshOptimization) {
  const Query query = MakeQuery(10, 42);
  MpqOptions opts;
  opts.num_workers = 16;

  MpqOptimizer fresh_optimizer(opts);
  StatusOr<MpqResult> fresh = fresh_optimizer.Optimize(query);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kAsyncBatch;
  service_opts.backend_threads = 2;
  service_opts.enable_plan_cache = true;
  OptimizerService service(service_opts);
  ASSERT_NE(service.plan_cache(), nullptr);

  StatusOr<MpqResult> miss = service.Optimize(query, opts);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss.value().from_plan_cache);

  StatusOr<MpqResult> hit = service.Optimize(query, opts);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit.value().from_plan_cache);

  // Same structure and same cost as the fresh run.
  EXPECT_EQ(PlanToString(hit.value().arena, hit.value().best[0]),
            PlanToString(fresh.value().arena, fresh.value().best[0]));
  EXPECT_DOUBLE_EQ(hit.value().arena.node(hit.value().best[0]).cost.time(),
                   fresh.value().arena.node(fresh.value().best[0]).cost.time());
  // A hit never crosses the (simulated) wire.
  EXPECT_EQ(hit.value().network_bytes, 0u);
  EXPECT_EQ(hit.value().network_messages, 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.queries_completed, 2u);
}

TEST(PlanCacheServiceTest, MultiObjectiveFrontierRoundTripsThroughCache) {
  const Query query = MakeQuery(8, 43);
  MpqOptions opts;
  opts.num_workers = 8;
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 2.0;

  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kAsyncBatch;
  service_opts.backend_threads = 2;
  service_opts.enable_plan_cache = true;
  OptimizerService service(service_opts);

  StatusOr<MpqResult> miss = service.Optimize(query, opts);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  StatusOr<MpqResult> hit = service.Optimize(query, opts);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_TRUE(hit.value().from_plan_cache);
  ASSERT_EQ(hit.value().best.size(), miss.value().best.size());
  for (size_t i = 0; i < hit.value().best.size(); ++i) {
    EXPECT_EQ(PlanToString(hit.value().arena, hit.value().best[i]),
              PlanToString(miss.value().arena, miss.value().best[i]));
  }
}

// --------------------------------------------------------- collision safety

TEST(PlanCacheTest, ForcedHashCollisionIsMissNotWrongPlan) {
  PlanCacheOptions opts;
  opts.num_shards = 1;
  PlanCache cache(opts);

  // Two keys with identical hashes but different bytes: a forced 128-bit
  // collision, far beyond what the real hash would ever produce.
  PlanCacheKey a = MakeRawKey({1, 2, 3, 4});
  PlanCacheKey b = MakeRawKey({9, 9, 9, 9, 9});
  b.hash_hi = a.hash_hi;
  b.hash_lo = a.hash_lo;
  ASSERT_NE(a, b);

  const CachedPlan plan_a = MakeMarkerPlan(111.0);
  cache.Insert(a, {{"T", 1.0}}, plan_a.arena, plan_a.best);

  // The colliding key must miss — full-key equality rejects it.
  EXPECT_FALSE(cache.Lookup(b) != nullptr);
  ASSERT_TRUE(cache.Lookup(a) != nullptr);

  // Both colliding keys can be cached side by side and still resolve to
  // their own plans.
  const CachedPlan plan_b = MakeMarkerPlan(222.0);
  cache.Insert(b, {{"T", 1.0}}, plan_b.arena, plan_b.best);
  std::shared_ptr<const CachedPlan> got_a = cache.Lookup(a);
  std::shared_ptr<const CachedPlan> got_b = cache.Lookup(b);
  ASSERT_TRUE(got_a != nullptr);
  ASSERT_TRUE(got_b != nullptr);
  EXPECT_DOUBLE_EQ(got_a->arena.node(got_a->best[0]).cardinality, 111.0);
  EXPECT_DOUBLE_EQ(got_b->arena.node(got_b->best[0]).cardinality, 222.0);
}

// ------------------------------------------------------------------- TTL

TEST(PlanCacheTest, TtlEvictsExpiredEntries) {
  // Injected clock: no sleeps, no flakiness.
  std::chrono::steady_clock::time_point fake_now{};
  PlanCacheOptions opts;
  opts.ttl_seconds = 10.0;
  opts.num_shards = 1;
  opts.clock = [&fake_now] { return fake_now; };
  PlanCache cache(opts);

  const PlanCacheKey key = MakeRawKey({1});
  const CachedPlan plan = MakeMarkerPlan(1.0);
  cache.Insert(key, {{"T", 1.0}}, plan.arena, plan.best);

  fake_now += std::chrono::seconds(9);
  EXPECT_TRUE(cache.Lookup(key) != nullptr);

  fake_now += std::chrono::seconds(2);  // now 11s after insert
  EXPECT_FALSE(cache.Lookup(key) != nullptr);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions_ttl, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

// ------------------------------------------------------------ byte budget

TEST(PlanCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  PlanCacheOptions opts;
  opts.num_shards = 1;
  opts.capacity_bytes = 4096;
  PlanCache cache(opts);

  // Insert until the budget forces evictions.
  const int kEntries = 64;
  for (int i = 0; i < kEntries; ++i) {
    const PlanCacheKey key = MakeRawKey({static_cast<uint8_t>(i)});
    const CachedPlan plan = MakeMarkerPlan(static_cast<double>(i));
    std::string name("T");
    name += std::to_string(i);
    cache.Insert(key, {{std::move(name), 1.0}}, plan.arena, plan.best);
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions_capacity, 0u);
  EXPECT_LE(stats.bytes_in_use, 4096u);
  EXPECT_LT(stats.entries, static_cast<uint64_t>(kEntries));

  // LRU order: the newest entry must have survived, the oldest must not.
  EXPECT_TRUE(
      cache.Lookup(MakeRawKey({static_cast<uint8_t>(kEntries - 1)}))
           != nullptr);
  EXPECT_FALSE(cache.Lookup(MakeRawKey({0})) != nullptr);
}

TEST(PlanCacheTest, OversizedEntryIsNotCached) {
  PlanCacheOptions opts;
  opts.num_shards = 1;
  opts.capacity_bytes = 64;  // smaller than any entry's fixed overhead
  PlanCache cache(opts);
  const PlanCacheKey key = MakeRawKey({1});
  const CachedPlan plan = MakeMarkerPlan(1.0);
  cache.Insert(key, {{"T", 1.0}}, plan.arena, plan.best);
  EXPECT_FALSE(cache.Lookup(key) != nullptr);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

// ----------------------------------------- statistics-sensitive invalidation

TEST(PlanCacheTest, StatisticsEpochInvalidatesOlderEntries) {
  PlanCacheOptions opts;
  PlanCache cache(opts);
  const PlanCacheKey k1 = MakeRawKey({1});
  const PlanCacheKey k2 = MakeRawKey({2});
  const CachedPlan plan = MakeMarkerPlan(1.0);
  cache.Insert(k1, {{"A", 10.0}}, plan.arena, plan.best);
  cache.Insert(k2, {{"B", 20.0}}, plan.arena, plan.best);
  EXPECT_EQ(cache.stats().entries, 2u);

  EXPECT_EQ(cache.statistics_epoch(), 0u);
  cache.BumpStatisticsEpoch();
  EXPECT_EQ(cache.statistics_epoch(), 1u);

  EXPECT_FALSE(cache.Lookup(k1) != nullptr);
  EXPECT_FALSE(cache.Lookup(k2) != nullptr);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions_invalidated, 2u);
  EXPECT_EQ(stats.entries, 0u);

  // Entries inserted under the new epoch serve normally.
  cache.Insert(k1, {{"A", 12.0}}, plan.arena, plan.best);
  EXPECT_TRUE(cache.Lookup(k1) != nullptr);

  // A plan computed before a bump but inserted after it (the in-flight
  // optimization race) is born stale and never served: the bump fences
  // it even though the insert physically happened later.
  const uint64_t before_bump = cache.statistics_epoch();
  cache.BumpStatisticsEpoch();
  cache.Insert(k2, {{"B", 21.0}}, plan.arena, plan.best, before_bump);
  EXPECT_FALSE(cache.Lookup(k2) != nullptr);
}

TEST(PlanCacheTest, InvalidateWhereEvictsExactlyDependentEntries) {
  PlanCacheOptions opts;
  PlanCache cache(opts);
  const CachedPlan plan = MakeMarkerPlan(1.0);
  // Three entries: two depend on table "R3", one does not.
  cache.Insert(MakeRawKey({1}), {{"R1", 5.0}, {"R3", 100.0}}, plan.arena,
               plan.best);
  cache.Insert(MakeRawKey({2}), {{"R3", 100.0}}, plan.arena, plan.best);
  cache.Insert(MakeRawKey({3}), {{"R7", 9.0}}, plan.arena, plan.best);

  EXPECT_EQ(cache.InvalidateTable("R3"), 2u);
  EXPECT_FALSE(cache.Lookup(MakeRawKey({1})) != nullptr);
  EXPECT_FALSE(cache.Lookup(MakeRawKey({2})) != nullptr);
  EXPECT_TRUE(cache.Lookup(MakeRawKey({3})) != nullptr);
  EXPECT_EQ(cache.stats().evictions_invalidated, 2u);

  // Predicate form: evict entries whose cardinality for R7 changed.
  const size_t evicted =
      cache.InvalidateWhere([](const PlanCacheEntryView& view) {
        for (const auto& [name, cardinality] : view.table_statistics) {
          if (name == "R7" && cardinality != 9.0) return true;
        }
        return false;
      });
  EXPECT_EQ(evicted, 0u);  // cardinality still matches — nothing to evict
  EXPECT_TRUE(cache.Lookup(MakeRawKey({3})) != nullptr);
}

TEST(PlanCacheServiceTest, EpochBumpForcesReoptimization) {
  const Query query = MakeQuery(9, 77);
  MpqOptions opts;
  opts.num_workers = 8;

  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kAsyncBatch;
  service_opts.backend_threads = 2;
  service_opts.enable_plan_cache = true;
  OptimizerService service(service_opts);

  ASSERT_TRUE(service.Optimize(query, opts).ok());
  StatusOr<MpqResult> hit = service.Optimize(query, opts);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().from_plan_cache);

  service.plan_cache()->BumpStatisticsEpoch();
  StatusOr<MpqResult> after = service.Optimize(query, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().from_plan_cache);
  EXPECT_EQ(service.stats().cache_misses, 2u);
  EXPECT_GT(service.stats().cache_evictions, 0u);
}

// ------------------------------------------------------------ single-flight

/// Counts the rounds that actually reach the wrapped backend.
class CountingBackend : public ExecutionBackend {
 public:
  explicit CountingBackend(std::shared_ptr<ExecutionBackend> inner)
      : ExecutionBackend(inner->network()), inner_(std::move(inner)) {}

  StatusOr<RoundResult> RunRound(
      const std::vector<WorkerTask>& tasks,
      const std::vector<std::vector<uint8_t>>& requests) override {
    rounds_.fetch_add(1, std::memory_order_relaxed);
    return inner_->RunRound(tasks, requests);
  }
  const char* name() const override { return "counting"; }
  uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<ExecutionBackend> inner_;
  std::atomic<uint64_t> rounds_{0};
};

TEST(PlanCacheServiceTest, ConcurrentSameFingerprintMissesOptimizeOnce) {
  const Query query = MakeQuery(10, 99);
  MpqOptions opts;
  opts.num_workers = 16;

  auto counting = std::make_shared<CountingBackend>(
      std::make_shared<AsyncBatchBackend>(NetworkModel{}, 2));
  ServiceOptions service_opts;
  service_opts.backend = counting;
  service_opts.enable_plan_cache = true;
  OptimizerService service(service_opts);

  MpqOptimizer reference(opts);
  StatusOr<MpqResult> fresh = reference.Optimize(query);
  ASSERT_TRUE(fresh.ok());
  const double expected_cost =
      fresh.value().arena.node(fresh.value().best[0]).cost.time();

  const int kCallers = 8;
  std::vector<std::thread> callers;
  std::vector<double> costs(kCallers, -1.0);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&, i]() {
      StatusOr<MpqResult> r = service.Optimize(query, opts);
      if (r.ok()) {
        costs[static_cast<size_t>(i)] =
            r.value().arena.node(r.value().best[0]).cost.time();
      }
    });
  }
  for (std::thread& t : callers) t.join();

  // Exactly one optimization ran (one worker round), every caller got
  // the right plan, and the stats agree: 1 miss, kCallers - 1 hits.
  EXPECT_EQ(counting->rounds(), 1u);
  for (double cost : costs) EXPECT_DOUBLE_EQ(cost, expected_cost);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, static_cast<uint64_t>(kCallers - 1));
  EXPECT_EQ(stats.queries_completed, static_cast<uint64_t>(kCallers));
}

}  // namespace
}  // namespace mpqopt
