// Copyright 2026 mpqopt authors.
//
// Observability subsystem tests: the shared percentile estimator, the
// metrics registry (histogram boundaries, bucket-interpolated
// percentiles, snapshot deltas, concurrent recording), the span tree
// (nesting, ordering, thread-context adoption), the kTracedTask wire
// round-trip over real loopback mpqopt_worker subprocesses, and the
// invariant the whole subsystem hangs on: plan choices are byte-identical
// with tracing on or off, on every execution backend.

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "catalog/generator.h"
#include "cluster/task_registry.h"
#include "common/serialize.h"
#include "mpq/mpq.h"
#include "obs/metrics.h"
#include "obs/percentile.h"
#include "obs/trace.h"
#include "plan/plan_serde.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

// ------------------------------------------------------------ percentile

TEST(PercentileTest, EmptyAndSingleton) {
  EXPECT_EQ(obs::Percentile({}, 50), 0);
  EXPECT_EQ(obs::Percentile({7.5}, 0), 7.5);
  EXPECT_EQ(obs::Percentile({7.5}, 99), 7.5);
}

TEST(PercentileTest, LinearInterpolationOverSortedRanks) {
  // Ranks over n=5 samples: p50 -> rank 2 exactly, p75 -> rank 3,
  // p90 -> rank 3.6 (interpolated between 40 and 50).
  const std::vector<double> values = {50, 10, 40, 30, 20};  // unsorted input
  EXPECT_DOUBLE_EQ(obs::Percentile(values, 0), 10);
  EXPECT_DOUBLE_EQ(obs::Percentile(values, 50), 30);
  EXPECT_DOUBLE_EQ(obs::Percentile(values, 75), 40);
  EXPECT_DOUBLE_EQ(obs::Percentile(values, 90), 46);
  EXPECT_DOUBLE_EQ(obs::Percentile(values, 100), 50);
}

// --------------------------------------------------------------- metrics

TEST(MetricsTest, LatencyBoundariesAreStrictlyIncreasing) {
  const std::vector<double> bounds = obs::Histogram::LatencyBoundariesMs();
  ASSERT_GE(bounds.size(), 30u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.01);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "boundary " << i;
  }
  // Wide enough for the slowest latency this repo plausibly measures.
  EXPECT_GT(bounds.back(), 60e3);  // > one minute, in ms
}

TEST(MetricsTest, HistogramCountsSumAndInterpolatedPercentiles) {
  obs::Histogram hist({1.0, 2.0, 4.0, 8.0});
  // 100 samples uniformly filling the (1, 2] bucket.
  for (int i = 1; i <= 100; ++i) {
    hist.Record(1.0 + static_cast<double>(i) / 100.0);
  }
  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.Mean(), 1.505, 1e-9);
  // Every sample is in bucket (1, 2]; interpolation maps quantile q to
  // roughly 1 + q within the bucket (exact rank placement differs by
  // one sample width, hence the 0.02 tolerance at n=100).
  EXPECT_NEAR(snap.Percentile(50), 1.5, 0.02);
  EXPECT_NEAR(snap.Percentile(95), 1.95, 0.02);
  // The overflow bucket pins to the last boundary instead of inventing
  // an upper bound.
  hist.Record(100.0);
  EXPECT_DOUBLE_EQ(hist.Snapshot().Percentile(100), 8.0);
}

TEST(MetricsTest, EmptyHistogramPercentileIsZero) {
  // An unrecorded histogram must answer 0, not divide by a zero count or
  // interpolate into garbage — /statz and the telemetry exposition render
  // snapshots of histograms that may never have been touched.
  obs::Histogram hist({1.0, 2.0});
  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  // A degenerate snapshot with no bounds at all is equally inert.
  obs::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(99), 0.0);
}

TEST(MetricsTest, SnapshotSinceIsolatesAWindow) {
  obs::Histogram hist({1.0, 10.0});
  hist.Record(0.5);
  hist.Record(5.0);
  const obs::HistogramSnapshot before = hist.Snapshot();
  hist.Record(5.0);
  hist.Record(5.0);
  const obs::HistogramSnapshot delta = hist.Snapshot().Since(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_DOUBLE_EQ(delta.sum, 10.0);
  // Both windowed samples sit in (1, 10].
  EXPECT_GT(delta.Percentile(50), 1.0);
}

TEST(MetricsTest, RegistryReturnsStableInstrumentsAndDumps) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.requests");
  EXPECT_EQ(counter, registry.GetCounter("test.requests"));
  counter->Add(3);
  registry.GetGauge("test.depth")->Set(-2);
  obs::Histogram* hist =
      registry.GetHistogram("test.ms", obs::Histogram::LatencyBoundariesMs());
  EXPECT_EQ(hist, registry.FindHistogram("test.ms"));
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
  hist->Record(1.0);
  const std::string dump = registry.StatzDump();
  EXPECT_NE(dump.find("counter test.requests 3"), std::string::npos);
  EXPECT_NE(dump.find("gauge test.depth -2"), std::string::npos);
  EXPECT_NE(dump.find("histogram test.ms count=1"), std::string::npos);
}

TEST(MetricsTest, ConcurrentRecordingIsSafe) {
  // TSan checks this test for races: 8 threads hammer one counter and
  // one histogram through the sharded lock-free path.
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c");
  obs::Histogram* hist = registry.GetHistogram("h", {1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Record(static_cast<double>((t + i) % 120));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist->Snapshot().count, uint64_t{kThreads} * kPerThread);
}

// ----------------------------------------------------------------- spans

TEST(TraceTest, SpanNestingAndRestoredParents) {
  obs::QueryTrace trace(7, "unit");
  {
    obs::TraceContextScope scope(&trace, obs::kNoSpan);
    obs::Span root("root");
    EXPECT_EQ(root.trace(), &trace);
    {
      obs::Span child("child");
      obs::Span grandchild("grandchild");
      (void)grandchild;
      (void)child;
    }
    // After the nested spans closed, the next span is root's child
    // again — the thread context was restored.
    obs::Span sibling("sibling");
    (void)sibling;
  }
  const std::vector<obs::SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, 0u);
  for (const obs::SpanRecord& span : spans) {
    EXPECT_GT(span.end_ns, 0u) << span.name;
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
  }
  EXPECT_GT(trace.RootMillis(), 0);
}

TEST(TraceTest, SpanIsInertWithoutAContext) {
  // No TraceContextScope installed: the span must record nothing and
  // report itself inert.
  obs::Span span("orphan");
  EXPECT_EQ(span.trace(), nullptr);
  EXPECT_EQ(span.id(), obs::kNoSpan);
}

TEST(TraceTest, ThreadsAdoptTheSubmitterContext) {
  obs::QueryTrace trace(9, "threads");
  obs::TraceContextScope scope(&trace, obs::kNoSpan);
  obs::Span root("root");
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([ctx]() {
      obs::TraceContextScope adopt(ctx);
      obs::Span work("work");
      (void)work;
    });
  }
  for (std::thread& t : pool) t.join();
  const std::vector<obs::SpanRecord> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u + kThreads);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name, "work");
    EXPECT_EQ(spans[i].parent, root.id());
  }
}

TEST(TraceTest, BreakdownAndChromeExport) {
  obs::TraceCollectorOptions options;
  options.chrome_out_path = ::testing::TempDir() + "/obs_test_trace.json";
  obs::TraceCollector collector(options);
  std::unique_ptr<obs::QueryTrace> trace = collector.StartTrace("export");
  {
    obs::TraceContextScope scope(trace.get(), obs::kNoSpan);
    obs::Span root("service.optimize");
    obs::Span inner("mpq.round");
    (void)root;
    (void)inner;
  }
  const std::string breakdown = obs::FormatSpanBreakdown(*trace);
  EXPECT_NE(breakdown.find("service.optimize"), std::string::npos);
  EXPECT_NE(breakdown.find("  mpq.round"), std::string::npos);

  collector.Collect(std::move(trace));
  EXPECT_EQ(collector.collected(), 1u);
  ASSERT_TRUE(collector.WriteChromeTrace().ok());
  FILE* f = std::fopen(options.chrome_out_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 12, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::remove(options.chrome_out_path.c_str());
  EXPECT_EQ(content.front(), '[');
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(content.find("service.optimize"), std::string::npos);
  EXPECT_NE(content.find("\"label\":\"export\""), std::string::npos);
}

// ------------------------------------------------------------ wire format

TEST(TracedTaskTest, EnvelopeRoundTripInProcess) {
  const std::vector<uint8_t> inner_request = {1, 2, 3, 4};
  const std::vector<uint8_t> payload =
      BuildTracedTaskRequest(42, RpcTaskKind::kEchoTask, inner_request);
  StatusOr<std::vector<uint8_t>> response = TracedTaskMain(payload);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  uint64_t trace_id = 0;
  std::vector<ImportedSpan> spans;
  std::vector<uint8_t> inner_response;
  ASSERT_TRUE(ParseTracedTaskResponse(response.value(), &trace_id, &spans,
                                      &inner_response)
                  .ok());
  EXPECT_EQ(trace_id, 42u);
  EXPECT_EQ(inner_response, inner_request);  // echo through the envelope
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "worker.serve");
  EXPECT_EQ(spans[1].name, "worker.compute");
  // The compute span is contained in the serve span.
  EXPECT_LE(spans[1].start_rel_ns + spans[1].dur_ns,
            spans[0].start_rel_ns + spans[0].dur_ns);
}

TEST(TracedTaskTest, RejectsNestingAndFailsThrough) {
  // traced(traced(...)) and traced(batch(...)) are rejected outright.
  const std::vector<uint8_t> nested = BuildTracedTaskRequest(
      1, RpcTaskKind::kTracedTask,
      BuildTracedTaskRequest(2, RpcTaskKind::kEchoTask, {}));
  EXPECT_FALSE(TracedTaskMain(nested).ok());
  // A failing subtask fails the whole envelope (no partial trace block).
  const std::string message = "inner failure";
  const std::vector<uint8_t> failing = BuildTracedTaskRequest(
      3, RpcTaskKind::kFailTask,
      std::vector<uint8_t>(message.begin(), message.end()));
  StatusOr<std::vector<uint8_t>> response = TracedTaskMain(failing);
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("inner failure"),
            std::string::npos);
}

// ------------------------------------------------- rpc + plan invariants

Query MakeQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

std::vector<uint8_t> PlanBytes(const MpqResult& result) {
  ByteWriter writer;
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.buffer();
}

TEST(TracedRpcTest, TraceIdJoinsWorkerSpansOverRealSockets) {
  RpcWorkerFarm farm;
  farm.Start(2);
  BackendOptions options;
  options.workers_addr = farm.workers_addr();
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, options);
  ASSERT_TRUE(backend.ok());

  const Query query = MakeQuery(8, 902);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;

  // Reference run with tracing off.
  MpqOptions untraced = opts;
  untraced.backend = backend.value();
  MpqOptimizer plain(untraced);
  StatusOr<MpqResult> reference = plain.Optimize(query);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Traced run over the same live workers.
  obs::QueryTrace trace(1234, "rpc");
  StatusOr<MpqResult> traced = Status::Internal("not run");
  {
    obs::TraceContextScope scope(&trace, obs::kNoSpan);
    obs::Span root("service.optimize");
    MpqOptions with_trace = opts;
    with_trace.backend = backend.value();
    MpqOptimizer optimizer(with_trace);
    traced = optimizer.Optimize(query);
  }
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  // Same plan bytes with and without the envelope on the wire.
  EXPECT_EQ(PlanBytes(traced.value()), PlanBytes(reference.value()));

  // The worker's serve-loop timings came back over the wire and were
  // grafted under this trace: per task, one worker.serve parenting one
  // worker.compute.
  const std::vector<obs::SpanRecord> spans = trace.Snapshot();
  size_t serve = 0, compute = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "worker.serve") {
      ++serve;
      EXPECT_GE(spans[i].end_ns, spans[i].start_ns);
    } else if (spans[i].name == "worker.compute") {
      ++compute;
      ASSERT_NE(spans[i].parent, obs::kNoSpan);
      EXPECT_EQ(spans[spans[i].parent].name, "worker.serve");
    }
  }
  EXPECT_EQ(serve, opts.num_workers);
  EXPECT_EQ(compute, opts.num_workers);
  // Master-side rpc spans recorded around them.
  size_t lanes = 0;
  for (const obs::SpanRecord& span : spans) {
    lanes += span.name == "rpc.lane";
  }
  EXPECT_GT(lanes, 0u);
}

TEST(TracedRpcTest, CoalescedBatchCarriesTracedSubtasks) {
  RpcWorkerFarm farm;
  farm.Start(1);
  BackendOptions options;
  options.workers_addr = farm.workers_addr();
  options.coalesce_scatter = true;
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, options);
  ASSERT_TRUE(backend.ok());

  obs::QueryTrace trace(77, "coalesced");
  std::vector<WorkerTask> tasks(3, WorkerTask(&EchoTaskMain));
  std::vector<std::vector<uint8_t>> requests = {{1}, {2, 2}, {3, 3, 3}};
  StatusOr<RoundResult> round = Status::Internal("not run");
  {
    obs::TraceContextScope scope(&trace, obs::kNoSpan);
    obs::Span root("round");
    round = backend.value()->RunRound(tasks, requests);
  }
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(round.value().responses[i], requests[i]);
  }
  size_t serve = 0;
  for (const obs::SpanRecord& span : trace.Snapshot()) {
    serve += span.name == "worker.serve";
  }
  EXPECT_EQ(serve, requests.size());
}

class TracingBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kRpc) farm_.Start(2);
  }
  std::shared_ptr<ExecutionBackend> MakeTestBackend() {
    BackendOptions options;
    options.max_threads = 2;
    options.workers_addr = farm_.workers_addr();
    StatusOr<std::shared_ptr<ExecutionBackend>> backend =
        MakeBackend(GetParam(), options);
    MPQOPT_CHECK(backend.ok());
    return std::move(backend).value();
  }
  RpcWorkerFarm farm_;
};

TEST_P(TracingBackendTest, PlanChoiceIsByteIdenticalTracingOnOrOff) {
  const Query query = MakeQuery(8, 321);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;
  opts.backend = MakeTestBackend();
  MpqOptimizer optimizer(opts);

  StatusOr<MpqResult> off = optimizer.Optimize(query);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  obs::QueryTrace trace(5, "parity");
  StatusOr<MpqResult> on = Status::Internal("not run");
  {
    obs::TraceContextScope scope(&trace, obs::kNoSpan);
    obs::Span root("service.optimize");
    on = optimizer.Optimize(query);
  }
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  EXPECT_EQ(PlanBytes(off.value()), PlanBytes(on.value()))
      << "tracing changed the chosen plan on "
      << BackendKindName(GetParam());
  // And tracing actually recorded the round: every backend contributes
  // at least the mpq phase spans under the root.
  const std::vector<obs::SpanRecord> spans = trace.Snapshot();
  size_t rounds = 0;
  for (const obs::SpanRecord& span : spans) {
    rounds += span.name == "mpq.round";
  }
  EXPECT_GE(rounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TracingBackendTest,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kProcess,
                                           BackendKind::kAsyncBatch,
                                           BackendKind::kRpc),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return std::string(BackendKindName(info.param));
                         });

TEST(TraceTest, ConcurrentSpansOnOneTraceAreSafe) {
  // TSan coverage for the QueryTrace mutex: many threads open/close
  // spans and import complete spans on one shared trace.
  obs::QueryTrace trace(11, "tsan");
  obs::TraceContextScope scope(&trace, obs::kNoSpan);
  obs::Span root("root");
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([ctx]() {
      obs::TraceContextScope adopt(ctx);
      for (int i = 0; i < kPerThread; ++i) {
        obs::Span span("work");
        ctx.trace->AddCompleteSpan("imported", span.id(),
                                   obs::MonotonicNanos(),
                                   obs::MonotonicNanos());
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(trace.Snapshot().size(), 1u + 2u * kThreads * kPerThread);
}

}  // namespace
}  // namespace mpqopt
