// Copyright 2026 mpqopt authors.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/serialize.h"
#include "common/status.h"

namespace mpqopt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("abcdef"));
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "abcdef");
}

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter w;
  w.WriteU8(200);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(uint64_t{1} << 63);
  w.WriteI64(-12345678901234LL);
  w.WriteDouble(3.14159);
  w.WriteString("hello");

  ByteReader r(w.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 200);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, uint64_t{1} << 63);
  EXPECT_EQ(i64, -12345678901234LL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, ByteSizesAreExact) {
  ByteWriter w;
  w.WriteU8(1);
  EXPECT_EQ(w.size(), 1u);
  w.WriteU32(1);
  EXPECT_EQ(w.size(), 5u);
  w.WriteU64(1);
  EXPECT_EQ(w.size(), 13u);
  w.WriteDouble(1.0);
  EXPECT_EQ(w.size(), 21u);
  w.WriteString("abc");  // 4-byte length + payload
  EXPECT_EQ(w.size(), 28u);
}

TEST(SerializeTest, ReadPastEndIsCorruption) {
  ByteWriter w;
  w.WriteU8(7);
  ByteReader r(w.buffer());
  uint32_t v = 0;
  EXPECT_EQ(r.ReadU32(&v).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, TruncatedStringIsCorruption) {
  ByteWriter w;
  w.WriteU32(1000);  // claims a 1000-byte string with no payload
  ByteReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, EmptyBufferAtEnd) {
  std::vector<uint8_t> empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(MathUtilTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 40));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 40) + 1));
}

TEST(MathUtilTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1025), 10);
}

TEST(MathUtilTest, FloorPowerOfTwo) {
  EXPECT_EQ(FloorPowerOfTwo(1), 1u);
  EXPECT_EQ(FloorPowerOfTwo(100), 64u);
  EXPECT_EQ(FloorPowerOfTwo(128), 128u);
}

TEST(MathUtilTest, IPow) {
  EXPECT_EQ(IPow(3, 0), 1u);
  EXPECT_EQ(IPow(3, 4), 81u);
  EXPECT_EQ(IPow(2, 20), 1u << 20);
}

}  // namespace
}  // namespace mpqopt
