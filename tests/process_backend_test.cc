// Copyright 2026 mpqopt authors.

#include "cluster/process_backend.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "cluster/thread_backend.h"
#include "mpq/mpq.h"

namespace mpqopt {
namespace {

WorkerTask Echo() {
  return [](const std::vector<uint8_t>& request)
             -> StatusOr<std::vector<uint8_t>> { return request; };
}

TEST(ProcessBackendTest, EchoAcrossProcessBoundary) {
  ProcessBackend exec(NetworkModel{});
  std::vector<WorkerTask> tasks(3, Echo());
  std::vector<std::vector<uint8_t>> requests = {{1, 2}, {}, {9, 9, 9}};
  StatusOr<RoundResult> round = exec.RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round.value().responses.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(round.value().responses[i], requests[i]);
  }
}

TEST(ProcessBackendTest, ChildStateDoesNotLeakToParent) {
  // The task mutates a global; with fork isolation, the parent's copy
  // must be untouched — the defining shared-nothing property.
  static int poisoned = 0;
  const WorkerTask poisoner =
      [](const std::vector<uint8_t>& r) -> StatusOr<std::vector<uint8_t>> {
    poisoned = 42;
    return r;
  };
  ProcessBackend exec(NetworkModel{});
  StatusOr<RoundResult> round = exec.RunRound({poisoner}, {{1}});
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(poisoned, 0);

  // Contrast: the thread backend shares the address space.
  ThreadBackend threads(NetworkModel{}, 1);
  ASSERT_TRUE(threads.RunRound({poisoner}, {{1}}).ok());
  EXPECT_EQ(poisoned, 42);
  poisoned = 0;
}

TEST(ProcessBackendTest, WorkerErrorPropagates) {
  const WorkerTask failing =
      [](const std::vector<uint8_t>&) -> StatusOr<std::vector<uint8_t>> {
    return Status::Corruption("bad payload");
  };
  ProcessBackend exec(NetworkModel{});
  StatusOr<RoundResult> round = exec.RunRound({failing}, {{1}});
  EXPECT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("bad payload"), std::string::npos);
}

TEST(ProcessBackendTest, TrafficAccountingMatchesThreadBackend) {
  std::vector<WorkerTask> tasks(2, Echo());
  std::vector<std::vector<uint8_t>> requests = {{1, 2, 3}, {4}};
  ProcessBackend procs(NetworkModel{});
  ThreadBackend threads(NetworkModel{}, 1);
  StatusOr<RoundResult> a = procs.RunRound(tasks, requests);
  StatusOr<RoundResult> b = threads.RunRound(tasks, requests);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().traffic.bytes_sent, b.value().traffic.bytes_sent);
  EXPECT_EQ(a.value().traffic.messages, b.value().traffic.messages);
}

TEST(ProcessBackendTest, MpqProcessBackendMatchesThreadBackend) {
  GeneratorOptions gopts;
  gopts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(gopts, 91);
  const Query q = gen.Generate(8);

  MpqOptions thread_opts;
  thread_opts.space = PlanSpace::kLinear;
  thread_opts.num_workers = 8;
  MpqOptions process_opts = thread_opts;
  process_opts.backend =
      MakeBackend(BackendKind::kProcess, process_opts.network);

  MpqOptimizer threads(thread_opts);
  MpqOptimizer procs(process_opts);
  StatusOr<MpqResult> a = threads.Optimize(q);
  StatusOr<MpqResult> b = procs.Optimize(q);
  ASSERT_TRUE(a.ok() && b.ok()) << b.status().ToString();
  EXPECT_DOUBLE_EQ(a.value().arena.node(a.value().best[0]).cost.time(),
                   b.value().arena.node(b.value().best[0]).cost.time());
  EXPECT_EQ(a.value().network_bytes, b.value().network_bytes);
  EXPECT_EQ(a.value().max_worker_memo_sets, b.value().max_worker_memo_sets);
}

TEST(ProcessBackendTest, EmptyRound) {
  ProcessBackend exec(NetworkModel{});
  StatusOr<RoundResult> round = exec.RunRound({}, {});
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().responses.empty());
}

}  // namespace
}  // namespace mpqopt
