// Copyright 2026 mpqopt authors.

#include "partition/constraints.h"

#include <gtest/gtest.h>

#include <tuple>

namespace mpqopt {
namespace {

TEST(ConstraintsTest, GroupWidth) {
  EXPECT_EQ(GroupWidth(PlanSpace::kLinear), 2);
  EXPECT_EQ(GroupWidth(PlanSpace::kBushy), 3);
}

TEST(ConstraintsTest, MaxConstraints) {
  EXPECT_EQ(MaxConstraints(8, PlanSpace::kLinear), 4);
  EXPECT_EQ(MaxConstraints(9, PlanSpace::kLinear), 4);
  EXPECT_EQ(MaxConstraints(9, PlanSpace::kBushy), 3);
  EXPECT_EQ(MaxConstraints(11, PlanSpace::kBushy), 3);
  EXPECT_EQ(MaxConstraints(2, PlanSpace::kBushy), 0);
}

TEST(ConstraintsTest, MaxWorkersMatchesPaperFormulas) {
  // m <= 2^floor(n/2) for linear, 2^floor(n/3) for bushy (Section 5).
  EXPECT_EQ(MaxWorkers(8, PlanSpace::kLinear), 16u);
  EXPECT_EQ(MaxWorkers(16, PlanSpace::kLinear), 256u);
  EXPECT_EQ(MaxWorkers(24, PlanSpace::kLinear), 4096u);
  EXPECT_EQ(MaxWorkers(9, PlanSpace::kBushy), 8u);
  EXPECT_EQ(MaxWorkers(15, PlanSpace::kBushy), 32u);
  EXPECT_EQ(MaxWorkers(18, PlanSpace::kBushy), 64u);
}

TEST(ConstraintsTest, UsableWorkersRoundsDown) {
  EXPECT_EQ(UsableWorkers(8, PlanSpace::kLinear, 100), 16u);  // cap
  EXPECT_EQ(UsableWorkers(20, PlanSpace::kLinear, 100), 64u); // pow2 floor
  EXPECT_EQ(UsableWorkers(20, PlanSpace::kLinear, 128), 128u);
  EXPECT_EQ(UsableWorkers(4, PlanSpace::kBushy, 64), 2u);
  EXPECT_EQ(UsableWorkers(2, PlanSpace::kBushy, 64), 1u);
}

TEST(ConstraintsTest, NoneHasNoConstraints) {
  const ConstraintSet c = ConstraintSet::None(PlanSpace::kLinear);
  EXPECT_EQ(c.num_constraints(), 0);
  EXPECT_TRUE(c.Admits(TableSet::AllTables(6)));
  EXPECT_EQ(c.ToString(), "(none)");
}

TEST(ConstraintsTest, FromPartitionIdRejectsNonPowerOfTwo) {
  EXPECT_FALSE(
      ConstraintSet::FromPartitionId(8, PlanSpace::kLinear, 0, 3).ok());
}

TEST(ConstraintsTest, FromPartitionIdRejectsTooManyPartitions) {
  EXPECT_FALSE(
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 0, 8).ok());
  EXPECT_TRUE(
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 0, 4).ok());
}

TEST(ConstraintsTest, FromPartitionIdRejectsIdOutOfRange) {
  EXPECT_FALSE(
      ConstraintSet::FromPartitionId(8, PlanSpace::kLinear, 4, 4).ok());
}

TEST(ConstraintsTest, PaperExampleFourTablesPartitionThree) {
  // Paper Example 1: four tables R,S,T,U; partition id 10 binary (our
  // 0-based id 2 = bits 01 reversed...): bit0 = 0 orders Q0 before Q1,
  // bit1 = 1 orders Q3 before Q2.
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 2, 4);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c.value().linear().size(), 2u);
  EXPECT_EQ(c.value().linear()[0].before, 0);
  EXPECT_EQ(c.value().linear()[0].after, 1);
  EXPECT_EQ(c.value().linear()[1].before, 3);
  EXPECT_EQ(c.value().linear()[1].after, 2);
}

TEST(ConstraintsTest, ComplementaryPartitionsFlipDirections) {
  StatusOr<ConstraintSet> a =
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 0, 2);
  StatusOr<ConstraintSet> b =
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 1, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().linear()[0].before, b.value().linear()[0].after);
  EXPECT_EQ(a.value().linear()[0].after, b.value().linear()[0].before);
}

TEST(ConstraintsTest, LinearAdmitsSemantics) {
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 0, 2);
  ASSERT_TRUE(c.ok());  // constraint: Q0 before Q1
  EXPECT_TRUE(c.value().Admits(TableSet::Single(0).With(1)));
  EXPECT_TRUE(c.value().Admits(TableSet::Single(0).With(2)));
  EXPECT_FALSE(c.value().Admits(TableSet::Single(1).With(2)));
  EXPECT_TRUE(c.value().Admits(TableSet::AllTables(4)));
  // Singletons are always admissible (scans handled separately).
  EXPECT_TRUE(c.value().Admits(TableSet::Single(1)));
}

TEST(ConstraintsTest, BushyAdmitsSemantics) {
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(6, PlanSpace::kBushy, 0, 2);
  ASSERT_TRUE(c.ok());  // constraint: Q0 <= Q1 | Q2
  // {Q1, Q2} without Q0 is the excluded combination.
  EXPECT_FALSE(c.value().Admits(TableSet::Single(1).With(2)));
  EXPECT_FALSE(c.value().Admits(TableSet::Single(1).With(2).With(4)));
  EXPECT_TRUE(c.value().Admits(TableSet::Single(0).With(1).With(2)));
  EXPECT_TRUE(c.value().Admits(TableSet::Single(1).With(4)));
  EXPECT_TRUE(c.value().Admits(TableSet::Single(2)));
}

TEST(ConstraintsTest, BushyFlippedDirection) {
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(6, PlanSpace::kBushy, 1, 2);
  ASSERT_TRUE(c.ok());  // constraint: Q1 <= Q0 | Q2
  EXPECT_FALSE(c.value().Admits(TableSet::Single(0).With(2)));
  EXPECT_TRUE(c.value().Admits(TableSet::Single(1).With(2)));
}

TEST(ConstraintsTest, ToStringRendersConstraints) {
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 2, 4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().ToString(), "Q0 < Q1, Q3 < Q2");
}

/// Every set must be admitted by at least one partition: union over
/// partitions covers the whole power set (the coverage half of the
/// partitioning correctness argument).
class CoverageTest
    : public ::testing::TestWithParam<std::tuple<int, int, PlanSpace>> {};

TEST_P(CoverageTest, PartitionsCoverPowerSet) {
  const auto [n, m, space] = GetParam();
  std::vector<ConstraintSet> partitions;
  for (int part = 0; part < m; ++part) {
    StatusOr<ConstraintSet> c =
        ConstraintSet::FromPartitionId(n, space, part, m);
    ASSERT_TRUE(c.ok());
    partitions.push_back(std::move(c).value());
  }
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    const TableSet s(bits);
    bool admitted = false;
    for (const ConstraintSet& c : partitions) {
      if (c.Admits(s)) {
        admitted = true;
        break;
      }
    }
    EXPECT_TRUE(admitted) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    LinearAndBushy, CoverageTest,
    ::testing::Values(std::make_tuple(4, 4, PlanSpace::kLinear),
                      std::make_tuple(6, 8, PlanSpace::kLinear),
                      std::make_tuple(7, 8, PlanSpace::kLinear),
                      std::make_tuple(8, 16, PlanSpace::kLinear),
                      std::make_tuple(10, 2, PlanSpace::kLinear),
                      std::make_tuple(6, 4, PlanSpace::kBushy),
                      std::make_tuple(9, 8, PlanSpace::kBushy),
                      std::make_tuple(10, 8, PlanSpace::kBushy),
                      std::make_tuple(11, 4, PlanSpace::kBushy)));

}  // namespace
}  // namespace mpqopt
