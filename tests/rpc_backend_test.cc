// Copyright 2026 mpqopt authors.
//
// RPC-specific loopback tests: real mpqopt_worker subprocesses serve the
// rounds, covering what the backend-parameterized conformance suite in
// backend_test.cc cannot — worker crashes, unregistered tasks, scatter
// behaviour, the heterogeneous wire contract, and the OptimizerService
// running unchanged over remote workers.

#include "cluster/rpc_backend.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "catalog/generator.h"
#include "cluster/rpc_protocol.h"
#include "cluster/task_registry.h"
#include "common/copy_probe.h"
#include "common/serialize.h"
#include "mpq/heterogeneous.h"
#include "mpq/mpq.h"
#include "service/optimizer_service.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

Query MakeQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

std::shared_ptr<ExecutionBackend> ConnectFarm(const RpcWorkerFarm& farm,
                                              NetworkModel model = {}) {
  BackendOptions options;
  options.network = model;
  options.workers_addr = farm.workers_addr();
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, options);
  MPQOPT_CHECK(backend.ok());
  return std::move(backend).value();
}

TEST(RpcBackendTest, SplitEndpoints) {
  EXPECT_EQ(SplitEndpoints(""), std::vector<std::string>{});
  EXPECT_EQ(SplitEndpoints("a:1"), std::vector<std::string>{"a:1"});
  EXPECT_EQ(SplitEndpoints("a:1,b:2"),
            (std::vector<std::string>{"a:1", "b:2"}));
  EXPECT_EQ(SplitEndpoints("a:1,,b:2,"),
            (std::vector<std::string>{"a:1", "b:2"}));
}

TEST(RpcBackendTest, ConnectFailsWhenNoWorkerListens) {
  BackendOptions options;
  options.workers_addr = "127.0.0.1:1";
  options.connect_timeout_ms = 500;
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, options);
  ASSERT_FALSE(backend.ok());
  EXPECT_NE(backend.status().message().find("127.0.0.1:1"),
            std::string::npos);
}

TEST(RpcBackendTest, ConnectRequiresEndpoints) {
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, BackendOptions{});
  ASSERT_FALSE(backend.ok());
  EXPECT_NE(backend.status().message().find("workers-addr"),
            std::string::npos);
}

TEST(RpcBackendTest, RoundRobinWhenTasksExceedWorkers) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  // 7 tasks over 2 connections: every response must still land in its
  // own slot, in task order.
  std::vector<WorkerTask> tasks(7, WorkerTask(&EchoTaskMain));
  std::vector<std::vector<uint8_t>> requests;
  for (uint8_t i = 0; i < 7; ++i) {
    requests.push_back({i, static_cast<uint8_t>(i + 100)});
  }
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().responses, requests);
}

TEST(RpcBackendTest, ConnectionsPersistAcrossManyRounds) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  std::vector<WorkerTask> tasks(3, WorkerTask(&EchoTaskMain));
  for (uint8_t r = 0; r < 50; ++r) {
    std::vector<std::vector<uint8_t>> requests(3, std::vector<uint8_t>{r});
    StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(round.value().responses, requests);
  }
}

TEST(RpcBackendTest, MasterSideScatterGatherMakesZeroPayloadCopies) {
  // The copy probe counts every master-side payload assembly copy (the
  // legacy Build*Payload builders). The production send path gathers
  // header and body spans straight into sendmsg, so a full MPQ run over
  // RPC — scatter, worker rounds, replies, finalize — must not move the
  // probe at all in this (master) process.
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);

  MpqOptions opts;
  opts.num_workers = 8;
  opts.space = PlanSpace::kLinear;
  opts.backend = backend;
  const Query query = MakeQuery(10, 91);

  const uint64_t copies_before = PayloadCopiesSoFar();
  MpqOptimizer optimizer(opts);
  StatusOr<MpqResult> result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().best.empty());
  EXPECT_EQ(PayloadCopiesSoFar() - copies_before, 0u)
      << "master-side payload copy on the zero-copy path";

  // Sanity: the probe is live — the legacy copying builder moves it.
  const std::vector<uint8_t> body = {1, 2, 3};
  (void)BuildRpcReplyPayload(0.5, body.data(), body.size());
  EXPECT_EQ(PayloadCopiesSoFar() - copies_before, 1u);
}

TEST(RpcReplyWireTest, GatherReplyMatchesLegacyBuilderBytes) {
  // SendRpcReply (gather spans) and the legacy BuildRpcReplyPayload +
  // SendFrame (assemble-then-copy) must emit byte-identical frames: new
  // masters keep understanding old workers and vice versa.
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  StatusOr<Socket> client = DialTcp(
      "127.0.0.1:" + std::to_string(listener.value().port()), 2000);
  ASSERT_TRUE(client.ok());
  StatusOr<Socket> server = listener.value().Accept(2000);
  ASSERT_TRUE(server.ok());

  const double seconds = 0.015625;
  std::vector<uint8_t> body(1000);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 13 + 5);
  }

  ASSERT_TRUE(SendRpcReply(client.value().fd(), RpcReplyKind::kOk, seconds,
                           {body.data(), body.size()})
                  .ok());
  const std::vector<uint8_t> legacy =
      BuildRpcReplyPayload(seconds, body.data(), body.size());
  ASSERT_TRUE(SendFrame(client.value().fd(),
                        static_cast<uint8_t>(RpcReplyKind::kOk), legacy)
                  .ok());

  Frame gathered;
  Frame copied;
  ASSERT_TRUE(RecvFrame(server.value().fd(), &gathered).ok());
  ASSERT_TRUE(RecvFrame(server.value().fd(), &copied).ok());
  EXPECT_EQ(gathered.kind, copied.kind);
  EXPECT_EQ(gathered.payload, copied.payload);

  // The split receiver decodes the seconds header off the same bytes.
  ASSERT_TRUE(SendRpcReply(client.value().fd(), RpcReplyKind::kTaskError,
                           seconds, {body.data(), body.size()})
                  .ok());
  uint8_t kind = 0;
  double decoded_seconds = 0;
  std::vector<uint8_t> decoded_body;
  ASSERT_TRUE(RecvRpcReply(server.value().fd(), &kind, &decoded_seconds,
                           &decoded_body, /*timeout_ms=*/2000)
                  .ok());
  EXPECT_EQ(kind, static_cast<uint8_t>(RpcReplyKind::kTaskError));
  EXPECT_EQ(decoded_seconds, seconds);
  EXPECT_EQ(decoded_body, body);
}

TEST(RpcBackendTest, UnregisteredTaskIsRejectedUpFront) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  const WorkerTask closure =
      [](const std::vector<uint8_t>& request)
      -> StatusOr<std::vector<uint8_t>> { return request; };
  StatusOr<RoundResult> round = backend->RunRound({closure}, {{1}});
  ASSERT_FALSE(round.ok());
  EXPECT_EQ(round.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(round.status().message().find("registered"), std::string::npos);
}

TEST(RpcBackendTest, TaskErrorDoesNotPoisonTheConnection) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  const std::string message = "bad payload";
  StatusOr<RoundResult> bad = backend->RunRound(
      {WorkerTask(&FailTaskMain)},
      {std::vector<uint8_t>(message.begin(), message.end())});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("bad payload"), std::string::npos);
  // The worker stayed healthy; the next round must succeed.
  StatusOr<RoundResult> good =
      backend->RunRound({WorkerTask(&EchoTaskMain)}, {{9}});
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good.value().responses[0], std::vector<uint8_t>{9});
}

TEST(RpcBackendTest, KilledWorkerIsFailedOverToTheSurvivor) {
  // The supervision subsystem turned this scenario from fail-fast into
  // self-healing: with one of two workers SIGKILLed, the round must
  // complete on the survivor (redials to the vanished peer are refused,
  // its tasks re-scatter), and the failure must be visible in the
  // backend's health report rather than in the round status.
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  farm.Kill(0);
  std::vector<WorkerTask> tasks(2, WorkerTask(&EchoTaskMain));
  std::vector<std::vector<uint8_t>> requests = {{1}, {2}};
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().responses, requests);
  const BackendHealth health = backend->health();
  ASSERT_EQ(health.workers.size(), 2u);
  EXPECT_GE(health.tasks_rescattered, 1u);
  EXPECT_GE(health.reconnect_attempts, 1u);
  EXPECT_EQ(health.CountWorkers(WorkerHealth::kHealthy), 1u);
  // Later rounds keep completing on the survivor. Redials are attempted
  // lazily by scatter passes once the backoff window expires, so drive
  // rounds until the vanished worker's budget is burned and it goes
  // DEAD — after which it is never dialed again.
  for (int r = 0;
       r < 100 && backend->health().CountWorkers(WorkerHealth::kDead) == 0;
       ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    StatusOr<RoundResult> again = backend->RunRound(tasks, requests);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_EQ(again.value().responses, requests);
  }
  EXPECT_EQ(backend->health().CountWorkers(WorkerHealth::kDead), 1u);
}

TEST(RpcBackendTest, KilledWorkerMidRoundYieldsErrorNotHang) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  // One task that would sleep 30 s remotely; the worker is SIGKILLed
  // shortly after dispatch, so the round must come back with an error
  // long before the sleep could finish.
  ByteWriter writer;
  writer.WriteU32(30'000);
  std::vector<std::vector<uint8_t>> requests = {writer.Release()};
  std::thread killer([&farm]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    farm.Kill(0);
  });
  const auto start = std::chrono::steady_clock::now();
  StatusOr<RoundResult> round =
      backend->RunRound({WorkerTask(&SleepEchoTaskMain)}, requests);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  killer.join();
  ASSERT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("disconnected"), std::string::npos);
  EXPECT_LT(elapsed, 20.0);
}

TEST(RpcBackendTest, IoTimeoutBoundsAStuckReplyWait) {
  RpcWorkerFarm farm;
  farm.Start(1);
  BackendOptions options;
  options.workers_addr = farm.workers_addr();
  options.io_timeout_ms = 200;
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, options);
  ASSERT_TRUE(backend.ok());
  // The worker is healthy but the task outlives the reply deadline; the
  // round must error out at ~the timeout, not after the full sleep.
  ByteWriter writer;
  writer.WriteU32(10'000);
  const auto start = std::chrono::steady_clock::now();
  StatusOr<RoundResult> round = backend.value()->RunRound(
      {WorkerTask(&SleepEchoTaskMain)}, {writer.Release()});
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, 8.0);
}

TEST(RpcServiceTest, MisconfiguredRpcServiceReportsErrorInsteadOfAborting) {
  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kRpc;  // no workers_addr
  OptimizerService service(service_opts);
  ASSERT_FALSE(service.init_status().ok());
  MpqOptions opts;
  opts.num_workers = 2;
  StatusOr<MpqResult> result = service.Optimize(MakeQuery(6, 1), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().queries_failed, 1u);
}

TEST(RpcServiceTest, ServiceBuildsRpcBackendFromWorkersAddr) {
  RpcWorkerFarm farm;
  farm.Start(2);
  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kRpc;
  service_opts.workers_addr = farm.workers_addr();
  OptimizerService service(service_opts);
  ASSERT_TRUE(service.init_status().ok())
      << service.init_status().ToString();
  EXPECT_STREQ(service.backend().name(), "rpc");
  MpqOptions opts;
  opts.num_workers = 4;
  StatusOr<MpqResult> result = service.Optimize(MakeQuery(7, 5), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(RpcBackendTest, ConcurrentRoundsShareConnectionsSafely) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  constexpr int kSubmitters = 6;
  constexpr int kRoundsEach = 15;
  std::vector<std::thread> submitters;
  std::vector<int> failures(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&backend, &failures, s]() {
      for (int r = 0; r < kRoundsEach; ++r) {
        std::vector<WorkerTask> tasks(4, WorkerTask(&EchoTaskMain));
        std::vector<std::vector<uint8_t>> requests;
        for (int t = 0; t < 4; ++t) {
          requests.push_back({static_cast<uint8_t>(s),
                              static_cast<uint8_t>(r),
                              static_cast<uint8_t>(t)});
        }
        StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
        if (!round.ok() || round.value().responses != requests) {
          ++failures[s];
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(failures[s], 0) << "submitter " << s;
  }
}

TEST(RpcBackendTest, HeteroWorkerWireContractOverRpc) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);

  const Query q = MakeQuery(8, 902);
  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 8;
  const std::vector<PartitionShare> shares =
      AssignPartitions({1.0, 3.0}, opts.num_workers);
  ASSERT_EQ(shares.size(), 2u);

  std::vector<std::vector<uint8_t>> requests;
  std::vector<std::vector<uint8_t>> reference;
  for (const PartitionShare& share : shares) {
    requests.push_back(HeteroMpqOptimizer::BuildRequest(q, share, opts));
    StatusOr<std::vector<uint8_t>> direct =
        HeteroMpqOptimizer::WorkerMain(requests.back());
    ASSERT_TRUE(direct.ok());
    reference.push_back(std::move(direct).value());
  }

  std::vector<WorkerTask> tasks(shares.size(),
                                WorkerTask(&HeteroMpqOptimizer::WorkerMain));
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(round.value().responses[i].size(), reference[i].size());
  }
}

TEST(RpcServiceTest, OptimizerServiceRunsUnchangedOverRpc) {
  RpcWorkerFarm farm;
  farm.Start(2);

  ServiceOptions service_opts;
  service_opts.backend = ConnectFarm(farm);
  service_opts.dispatcher_threads = 3;
  OptimizerService service(service_opts);
  EXPECT_STREQ(service.backend().name(), "rpc");

  MpqOptions opts;
  opts.space = PlanSpace::kLinear;
  opts.num_workers = 4;

  std::vector<Query> queries;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    queries.push_back(MakeQuery(7, 700 + seed));
  }
  const BatchReport report = service.OptimizeBatch(queries, opts);
  ASSERT_EQ(report.results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(report.results[i].ok())
        << "query " << i << ": " << report.results[i].status().ToString();
    // The plan served over real sockets must cost exactly what the
    // default in-process run finds.
    MpqOptimizer reference(opts);
    StatusOr<MpqResult> direct = reference.Optimize(queries[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(
        report.results[i]
            .value()
            .arena.node(report.results[i].value().best[0])
            .cost.time(),
        direct.value().arena.node(direct.value().best[0]).cost.time());
    EXPECT_EQ(report.results[i].value().network_bytes,
              direct.value().network_bytes);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_EQ(stats.queries_failed, 0u);
}

}  // namespace
}  // namespace mpqopt
