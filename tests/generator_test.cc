// Copyright 2026 mpqopt authors.

#include "catalog/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

namespace mpqopt {
namespace {

GeneratorOptions WithShape(JoinGraphShape shape) {
  GeneratorOptions opts;
  opts.shape = shape;
  return opts;
}

TEST(GeneratorTest, DeterministicAcrossInstances) {
  QueryGenerator a(WithShape(JoinGraphShape::kStar), 123);
  QueryGenerator b(WithShape(JoinGraphShape::kStar), 123);
  const Query qa = a.Generate(8);
  const Query qb = b.Generate(8);
  ASSERT_EQ(qa.num_tables(), qb.num_tables());
  for (int i = 0; i < qa.num_tables(); ++i) {
    EXPECT_DOUBLE_EQ(qa.table(i).cardinality, qb.table(i).cardinality);
  }
  ASSERT_EQ(qa.predicates().size(), qb.predicates().size());
  for (size_t i = 0; i < qa.predicates().size(); ++i) {
    EXPECT_DOUBLE_EQ(qa.predicates()[i].selectivity,
                     qb.predicates()[i].selectivity);
  }
}

TEST(GeneratorTest, GeneratedQueriesValidate) {
  QueryGenerator gen(WithShape(JoinGraphShape::kStar), 7);
  for (int n : {1, 2, 3, 8, 16, 24}) {
    EXPECT_TRUE(gen.Generate(n).Validate().ok()) << n << " tables";
  }
}

TEST(GeneratorTest, CardinalitiesWithinConfiguredRange) {
  GeneratorOptions opts = WithShape(JoinGraphShape::kChain);
  opts.min_cardinality = 50;
  opts.max_cardinality = 500;
  QueryGenerator gen(opts, 3);
  const Query q = gen.Generate(20);
  for (const TableInfo& t : q.tables()) {
    EXPECT_GE(t.cardinality, 50);
    EXPECT_LE(t.cardinality, 500);
  }
}

TEST(GeneratorTest, SelectivityMatchesSteinbrunnRule) {
  QueryGenerator gen(WithShape(JoinGraphShape::kStar), 11);
  const Query q = gen.Generate(10);
  for (const JoinPredicate& p : q.predicates()) {
    const double dl =
        q.table(p.left_table).attribute_domains[p.left_attribute];
    const double dr =
        q.table(p.right_table).attribute_domains[p.right_attribute];
    EXPECT_DOUBLE_EQ(p.selectivity, 1.0 / std::max(dl, dr));
  }
}

using Edge = std::pair<int, int>;

std::set<Edge> EdgesOf(const Query& q) {
  std::set<Edge> edges;
  for (const JoinPredicate& p : q.predicates()) {
    edges.insert({std::min(p.left_table, p.right_table),
                  std::max(p.left_table, p.right_table)});
  }
  return edges;
}

TEST(GeneratorTest, StarShape) {
  QueryGenerator gen(WithShape(JoinGraphShape::kStar), 5);
  const Query q = gen.Generate(6);
  const std::set<Edge> edges = EdgesOf(q);
  EXPECT_EQ(edges.size(), 5u);
  for (const Edge& e : edges) EXPECT_EQ(e.first, 0);  // hub is table 0
}

TEST(GeneratorTest, ChainShape) {
  QueryGenerator gen(WithShape(JoinGraphShape::kChain), 5);
  const Query q = gen.Generate(6);
  const std::set<Edge> edges = EdgesOf(q);
  EXPECT_EQ(edges.size(), 5u);
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(edges.count({i, i + 1})) << i;
  }
}

TEST(GeneratorTest, CycleShape) {
  QueryGenerator gen(WithShape(JoinGraphShape::kCycle), 5);
  const Query q = gen.Generate(6);
  const std::set<Edge> edges = EdgesOf(q);
  EXPECT_EQ(edges.size(), 6u);
  EXPECT_TRUE(edges.count({0, 5}));
}

TEST(GeneratorTest, CliqueShape) {
  QueryGenerator gen(WithShape(JoinGraphShape::kClique), 5);
  const Query q = gen.Generate(6);
  EXPECT_EQ(EdgesOf(q).size(), 15u);  // C(6,2)
}

TEST(GeneratorTest, SingleTableQueryHasNoPredicates) {
  QueryGenerator gen(WithShape(JoinGraphShape::kStar), 5);
  EXPECT_TRUE(gen.Generate(1).predicates().empty());
}

TEST(GeneratorTest, SuccessiveQueriesDiffer) {
  QueryGenerator gen(WithShape(JoinGraphShape::kStar), 5);
  const Query a = gen.Generate(8);
  const Query b = gen.Generate(8);
  bool any_difference = false;
  for (int i = 0; i < 8; ++i) {
    if (a.table(i).cardinality != b.table(i).cardinality) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, DomainNeverExceedsCardinality) {
  QueryGenerator gen(WithShape(JoinGraphShape::kStar), 23);
  const Query q = gen.Generate(24);
  for (const TableInfo& t : q.tables()) {
    for (double d : t.attribute_domains) {
      EXPECT_LE(d, std::max(2.0, t.cardinality));
    }
  }
}

}  // namespace
}  // namespace mpqopt
