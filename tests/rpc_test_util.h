// Copyright 2026 mpqopt authors.
//
// Self-hosting RPC test fixture support: spawns real mpqopt_worker server
// subprocesses on loopback ephemeral ports, so the wire-contract suite
// runs against genuinely remote workers. The worker binary path comes
// from $MPQOPT_WORKER_BIN (set by CMake on the RPC-using tests) and falls
// back to "./mpqopt_worker" — ctest runs tests from the build directory,
// where the binary lives.
//
// Failure-injection axes for the supervision tests:
//  * Kill(i)       — SIGKILL, the classic vanished node.
//  * Terminate(i)  — SIGTERM, expecting the worker's graceful drain path
//                    (reaps and returns the exit status).
//  * Restart(i)    — respawn a killed worker on its ORIGINAL port, so a
//                    supervisor redial to the old endpoint succeeds.
//  * StartChaos(n) — a worker armed with --chaos-kill-after=n: it serves
//                    n task requests, then crashes without replying — a
//                    deterministic mid-round node death.
//
// When $MPQOPT_WORKER_LOG_DIR names a directory, every spawned worker's
// stderr is redirected to <dir>/worker-<pid>.log; CI points this at a
// directory it uploads as a failure artifact, so a red failover test
// ships the worker-side story with it.

#ifndef MPQOPT_TESTS_RPC_TEST_UTIL_H_
#define MPQOPT_TESTS_RPC_TEST_UTIL_H_

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"

namespace mpqopt {

inline const char* WorkerBinaryPath() {
  const char* from_env = std::getenv("MPQOPT_WORKER_BIN");
  return from_env != nullptr ? from_env : "./mpqopt_worker";
}

/// A pool of mpqopt_worker subprocesses listening on 127.0.0.1.
class RpcWorkerFarm {
 public:
  RpcWorkerFarm() = default;
  ~RpcWorkerFarm() { StopAll(); }
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(RpcWorkerFarm);

  /// Spawns `n` workers and waits for each to report its listening
  /// port. `extra_args` (e.g. "--session-ttl-ms=100") are passed to
  /// every spawned worker; Restart() does NOT preserve them.
  void Start(int n, const std::vector<std::string>& extra_args = {}) {
    for (int i = 0; i < n; ++i) SpawnOne(/*port=*/0, extra_args);
  }

  /// Spawns one worker that serves `tasks_before_crash` task requests and
  /// then crashes without replying (pings are exempt from the budget).
  void StartChaos(int64_t tasks_before_crash) {
    SpawnOne(/*port=*/0,
             {"--chaos-kill-after=" + std::to_string(tasks_before_crash)});
  }

  /// "host:port,host:port" for --workers-addr / BackendOptions.
  std::string workers_addr() const {
    std::string joined;
    for (const Worker& worker : workers_) {
      if (!joined.empty()) joined += ",";
      joined += worker.endpoint;
    }
    return joined;
  }

  std::vector<std::string> endpoints() const {
    std::vector<std::string> result;
    for (const Worker& worker : workers_) result.push_back(worker.endpoint);
    return result;
  }

  size_t size() const { return workers_.size(); }

  /// SIGKILLs worker `i` and reaps it — the "node crash" of the
  /// fault-handling tests.
  void Kill(size_t i) {
    MPQOPT_CHECK_LT(i, workers_.size());
    Worker& worker = workers_[i];
    if (worker.pid <= 0) return;
    ::kill(worker.pid, SIGKILL);
    ::waitpid(worker.pid, nullptr, 0);
    worker.pid = -1;
  }

  /// SIGTERMs worker `i` (the graceful-drain path), reaps it, and
  /// returns its exit status: the exit code when it exited, or
  /// 128 + signal when a signal killed it.
  int Terminate(size_t i) {
    MPQOPT_CHECK_LT(i, workers_.size());
    Worker& worker = workers_[i];
    MPQOPT_CHECK_GT(worker.pid, 0);
    ::kill(worker.pid, SIGTERM);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.pid = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  /// Reaps worker `i` after it exited on its own (chaos kill), returning
  /// the same status encoding as Terminate.
  int WaitExit(size_t i) {
    MPQOPT_CHECK_LT(i, workers_.size());
    Worker& worker = workers_[i];
    MPQOPT_CHECK_GT(worker.pid, 0);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.pid = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  /// Respawns a previously killed/terminated worker `i` on the SAME port
  /// it listened on before, so an existing backend's redial of the old
  /// endpoint reaches the new process.
  void Restart(size_t i) {
    MPQOPT_CHECK_LT(i, workers_.size());
    Worker& worker = workers_[i];
    MPQOPT_CHECK(worker.pid <= 0 && "Kill/Terminate the worker first");
    const size_t colon = worker.endpoint.rfind(':');
    const int port = std::atoi(worker.endpoint.c_str() + colon + 1);
    workers_[i] = SpawnWorker(port, {});
  }

  void StopAll() {
    for (size_t i = 0; i < workers_.size(); ++i) Kill(i);
    workers_.clear();
  }

 private:
  struct Worker {
    pid_t pid = -1;
    std::string endpoint;
  };

  void SpawnOne(int port, const std::vector<std::string>& extra_args) {
    workers_.push_back(SpawnWorker(port, extra_args));
  }

  static Worker SpawnWorker(int port,
                            const std::vector<std::string>& extra_args) {
    int out_pipe[2];
    MPQOPT_CHECK_EQ(::pipe(out_pipe), 0);
    const char* log_dir = std::getenv("MPQOPT_WORKER_LOG_DIR");
    const pid_t pid = ::fork();
    MPQOPT_CHECK_GE(pid, 0);
    if (pid == 0) {
      // Child: route stdout into the pipe (stderr optionally into a log
      // file CI can upload) and become the worker server.
      ::close(out_pipe[0]);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[1]);
      if (log_dir != nullptr && log_dir[0] != '\0') {
        char log_path[512];
        std::snprintf(log_path, sizeof(log_path), "%s/worker-%d.log",
                      log_dir, static_cast<int>(::getpid()));
        const int log_fd =
            ::open(log_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (log_fd >= 0) {
          ::dup2(log_fd, STDERR_FILENO);
          ::close(log_fd);
        }
      }
      const std::string listen =
          "--listen=127.0.0.1:" + std::to_string(port);
      std::vector<const char*> argv;
      argv.push_back(WorkerBinaryPath());
      argv.push_back(listen.c_str());
      for (const std::string& arg : extra_args) argv.push_back(arg.c_str());
      argv.push_back(nullptr);
      ::execv(WorkerBinaryPath(), const_cast<char* const*>(argv.data()));
      std::fprintf(stderr, "exec %s failed: %s\n", WorkerBinaryPath(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    // Wait for "LISTENING <port>".
    FILE* out = ::fdopen(out_pipe[0], "r");
    MPQOPT_CHECK(out != nullptr);
    int bound_port = 0;
    const int matched = std::fscanf(out, "LISTENING %d", &bound_port);
    std::fclose(out);  // the worker keeps running; only our pipe end closes
    if (matched != 1 || bound_port <= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      MPQOPT_CHECK(false && "mpqopt_worker did not report a listening port");
    }
    Worker worker;
    worker.pid = pid;
    worker.endpoint = "127.0.0.1:" + std::to_string(bound_port);
    return worker;
  }

  std::vector<Worker> workers_;
};

}  // namespace mpqopt

#endif  // MPQOPT_TESTS_RPC_TEST_UTIL_H_
