// Copyright 2026 mpqopt authors.
//
// Self-hosting RPC test fixture support: spawns real mpqopt_worker server
// subprocesses on loopback ephemeral ports, so the wire-contract suite
// runs against genuinely remote workers. The worker binary path comes
// from $MPQOPT_WORKER_BIN (set by CMake on the RPC-using tests) and falls
// back to "./mpqopt_worker" — ctest runs tests from the build directory,
// where the binary lives.

#ifndef MPQOPT_TESTS_RPC_TEST_UTIL_H_
#define MPQOPT_TESTS_RPC_TEST_UTIL_H_

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"

namespace mpqopt {

inline const char* WorkerBinaryPath() {
  const char* from_env = std::getenv("MPQOPT_WORKER_BIN");
  return from_env != nullptr ? from_env : "./mpqopt_worker";
}

/// A pool of mpqopt_worker subprocesses listening on 127.0.0.1.
class RpcWorkerFarm {
 public:
  RpcWorkerFarm() = default;
  ~RpcWorkerFarm() { StopAll(); }
  MPQOPT_DISALLOW_COPY_AND_ASSIGN(RpcWorkerFarm);

  /// Spawns `n` workers and waits for each to report its listening port.
  void Start(int n) {
    for (int i = 0; i < n; ++i) SpawnOne();
  }

  /// "host:port,host:port" for --workers-addr / BackendOptions.
  std::string workers_addr() const {
    std::string joined;
    for (const Worker& worker : workers_) {
      if (!joined.empty()) joined += ",";
      joined += worker.endpoint;
    }
    return joined;
  }

  std::vector<std::string> endpoints() const {
    std::vector<std::string> result;
    for (const Worker& worker : workers_) result.push_back(worker.endpoint);
    return result;
  }

  size_t size() const { return workers_.size(); }

  /// SIGKILLs worker `i` and reaps it — the "node crash" of the
  /// fault-handling tests.
  void Kill(size_t i) {
    MPQOPT_CHECK_LT(i, workers_.size());
    Worker& worker = workers_[i];
    if (worker.pid <= 0) return;
    ::kill(worker.pid, SIGKILL);
    ::waitpid(worker.pid, nullptr, 0);
    worker.pid = -1;
  }

  void StopAll() {
    for (size_t i = 0; i < workers_.size(); ++i) Kill(i);
    workers_.clear();
  }

 private:
  struct Worker {
    pid_t pid = -1;
    std::string endpoint;
  };

  void SpawnOne() {
    int out_pipe[2];
    MPQOPT_CHECK_EQ(::pipe(out_pipe), 0);
    const pid_t pid = ::fork();
    MPQOPT_CHECK_GE(pid, 0);
    if (pid == 0) {
      // Child: route stdout into the pipe and become the worker server.
      ::close(out_pipe[0]);
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[1]);
      ::execl(WorkerBinaryPath(), WorkerBinaryPath(),
              "--listen=127.0.0.1:0", static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec %s failed: %s\n", WorkerBinaryPath(),
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    // Wait for "LISTENING <port>".
    FILE* out = ::fdopen(out_pipe[0], "r");
    MPQOPT_CHECK(out != nullptr);
    int port = 0;
    const int matched = std::fscanf(out, "LISTENING %d", &port);
    std::fclose(out);  // the worker keeps running; only our pipe end closes
    if (matched != 1 || port <= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      MPQOPT_CHECK(false && "mpqopt_worker did not report a listening port");
    }
    Worker worker;
    worker.pid = pid;
    worker.endpoint = "127.0.0.1:" + std::to_string(port);
    workers_.push_back(worker);
  }

  std::vector<Worker> workers_;
};

}  // namespace mpqopt

#endif  // MPQOPT_TESTS_RPC_TEST_UTIL_H_
