// Copyright 2026 mpqopt authors.
//
// Randomized property tests sweeping seeds and sizes (the "fuzz light"
// layer on top of the example-based suites).

#include <gtest/gtest.h>

#include <map>

#include "catalog/generator.h"
#include "common/rng.h"
#include "cost/cardinality.h"
#include "mpq/mpq.h"
#include "optimizer/dp.h"
#include "partition/partition_index.h"
#include "plan/plan_serde.h"

namespace mpqopt {
namespace {

Query MakeQuery(int n, JoinGraphShape shape, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = shape;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, QuerySerializationIsIdentityOnRandomQueries) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(1, 20));
  const auto shape = static_cast<JoinGraphShape>(rng.UniformInt(0, 3));
  const Query q = MakeQuery(n, shape, GetParam());
  ByteWriter w;
  q.Serialize(&w);
  ByteReader r(w.buffer());
  StatusOr<Query> back = Query::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  ByteWriter w2;
  back.value().Serialize(&w2);
  EXPECT_EQ(w.buffer(), w2.buffer());  // serialize∘deserialize = identity
}

TEST_P(SeededProperty, PartitionOptimaAreUpperBoundsOnOptimum) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = static_cast<int>(rng.UniformInt(6, 10));
  const Query q = MakeQuery(n, JoinGraphShape::kStar, seed);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  const double optimum =
      serial.value().arena.node(serial.value().best[0]).cost.time();
  const uint64_t m = UsableWorkers(n, PlanSpace::kLinear, 8);
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t part = 0; part < m; ++part) {
    StatusOr<ConstraintSet> c =
        ConstraintSet::FromPartitionId(n, PlanSpace::kLinear, part, m);
    ASSERT_TRUE(c.ok());
    StatusOr<DpResult> result = RunPartitionDp(q, c.value(), config);
    ASSERT_TRUE(result.ok());
    const double cost =
        result.value().arena.node(result.value().best[0]).cost.time();
    EXPECT_GE(cost, optimum * (1 - 1e-12));
    best = std::min(best, cost);
  }
  EXPECT_NEAR(best / optimum, 1.0, 1e-12);
}

TEST_P(SeededProperty, PlanSerdeRoundTripsOptimalPlans) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0xabcdef);
  const int n = static_cast<int>(rng.UniformInt(2, 10));
  const Query q = MakeQuery(n, JoinGraphShape::kChain, seed);
  DpConfig config;
  config.space = PlanSpace::kBushy;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  ByteWriter w;
  SerializePlan(result.value().arena, result.value().best[0], &w);
  PlanArena arena;
  ByteReader r(w.buffer());
  StatusOr<PlanId> back = DeserializePlan(&r, &arena);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(PlanToString(arena, back.value()),
            PlanToString(result.value().arena, result.value().best[0]));
}

TEST_P(SeededProperty, RankBijectiveOnRandomPartitions) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5555);
  const auto space =
      rng.UniformInt(0, 1) == 0 ? PlanSpace::kLinear : PlanSpace::kBushy;
  const int n = static_cast<int>(rng.UniformInt(4, 12));
  const uint64_t max_m = MaxWorkers(n, space);
  const uint64_t m = uint64_t{1} << rng.UniformInt(0, FloorLog2(max_m));
  const uint64_t part = static_cast<uint64_t>(rng.UniformInt(0, m - 1));
  StatusOr<ConstraintSet> c =
      ConstraintSet::FromPartitionId(n, space, part, m);
  ASSERT_TRUE(c.ok());
  const PartitionIndex idx(n, c.value());
  std::map<int64_t, uint64_t> rank_to_set;
  int64_t admissible = 0;
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    const int64_t rank = idx.Rank(TableSet(bits));
    if (rank < 0) continue;
    ++admissible;
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, idx.size());
    EXPECT_TRUE(rank_to_set.emplace(rank, bits).second);
  }
  EXPECT_EQ(admissible, idx.size());
}

TEST_P(SeededProperty, CardinalityCutIdentity) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x9999);
  const int n = static_cast<int>(rng.UniformInt(2, 10));
  const auto shape = static_cast<JoinGraphShape>(rng.UniformInt(0, 3));
  const Query q = MakeQuery(n, shape, seed);
  const CardinalityEstimator est(q);
  const TableSet all = q.all_tables();
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t bits =
        static_cast<uint64_t>(rng.UniformInt(1, (1 << n) - 2));
    const TableSet left(bits);
    const TableSet right = all.Minus(left);
    if (left.IsEmpty() || right.IsEmpty()) continue;
    const double lhs = est.Cardinality(all);
    const double rhs = est.Cardinality(left) * est.Cardinality(right) *
                       est.ConnectingSelectivity(left, right);
    if (rhs > 10) EXPECT_NEAR(lhs / rhs, 1.0, 1e-9);
  }
}

TEST_P(SeededProperty, MpqExactAcrossRandomConfigurations) {
  const uint64_t seed = GetParam();
  Rng rng(seed ^ 0x7777);
  const auto space =
      rng.UniformInt(0, 1) == 0 ? PlanSpace::kLinear : PlanSpace::kBushy;
  const int n = static_cast<int>(
      space == PlanSpace::kLinear ? rng.UniformInt(4, 11)
                                  : rng.UniformInt(4, 9));
  const auto shape = static_cast<JoinGraphShape>(rng.UniformInt(0, 3));
  const Query q = MakeQuery(n, shape, seed);
  DpConfig config;
  config.space = space;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  const uint64_t m = UsableWorkers(
      n, space, uint64_t{1} << rng.UniformInt(0, 5));
  MpqOptions opts;
  opts.space = space;
  opts.num_workers = m;
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(q);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(
      result.value().arena.node(result.value().best[0]).cost.time() /
          serial.value().arena.node(serial.value().best[0]).cost.time(),
      1.0, 1e-12)
      << PlanSpaceName(space) << " n=" << n << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace mpqopt
