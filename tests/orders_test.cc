// Copyright 2026 mpqopt authors.

#include "optimizer/orders.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "catalog/generator.h"

namespace mpqopt {
namespace {

/// Three tables, two attributes each; predicates chain t0.a0 = t1.a0 and
/// t1.a0 = t2.a1, so {t0.a0, t1.a0, t2.a1} form one class.
Query ChainedQuery() {
  std::vector<TableInfo> tables(3);
  for (auto& t : tables) {
    t.cardinality = 100;
    t.attribute_domains = {10.0, 10.0};
  }
  std::vector<JoinPredicate> preds;
  preds.push_back({0, 0, 1, 0, 0.1});
  preds.push_back({1, 0, 2, 1, 0.1});
  return Query(std::move(tables), std::move(preds));
}

TEST(OrderClassesTest, TransitiveMerging) {
  const Query q = ChainedQuery();
  const OrderClasses orders(q);
  EXPECT_EQ(orders.ClassOf(0, 0), orders.ClassOf(1, 0));
  EXPECT_EQ(orders.ClassOf(1, 0), orders.ClassOf(2, 1));
}

TEST(OrderClassesTest, UnrelatedAttributesStaySeparate) {
  const Query q = ChainedQuery();
  const OrderClasses orders(q);
  EXPECT_NE(orders.ClassOf(0, 0), orders.ClassOf(0, 1));
  EXPECT_NE(orders.ClassOf(0, 1), orders.ClassOf(1, 1));
  EXPECT_NE(orders.ClassOf(2, 0), orders.ClassOf(2, 1));
}

TEST(OrderClassesTest, ClassCount) {
  const Query q = ChainedQuery();
  const OrderClasses orders(q);
  // 6 attributes, 2 merges -> 4 classes.
  EXPECT_EQ(orders.num_classes(), 4);
}

TEST(OrderClassesTest, PredicateClassesMatchBothSides) {
  const Query q = ChainedQuery();
  const OrderClasses orders(q);
  for (const JoinPredicate& p : q.predicates()) {
    EXPECT_EQ(orders.ClassOfPredicate(p),
              orders.ClassOf(p.left_table, p.left_attribute));
    EXPECT_EQ(orders.ClassOfPredicate(p),
              orders.ClassOf(p.right_table, p.right_attribute));
  }
}

TEST(OrderClassesTest, MergeClassesForCut) {
  const Query q = ChainedQuery();
  const OrderClasses orders(q);
  const int cls = orders.ClassOf(0, 0);
  // Cut {0} vs {1,2}: predicate 0-1 crosses.
  std::vector<int> classes =
      orders.MergeClassesForCut(TableSet::Single(0),
                                TableSet::Single(1).With(2));
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], cls);
  // Cut {0,2} vs {1}: both predicates cross, but they share one class.
  classes = orders.MergeClassesForCut(TableSet::Single(0).With(2),
                                      TableSet::Single(1));
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], cls);
  // Cut {0} vs {2}: cross product, no merge class.
  EXPECT_TRUE(
      orders.MergeClassesForCut(TableSet::Single(0), TableSet::Single(2))
          .empty());
}

TEST(OrderClassesTest, MergeClassesDistinctForMultiplePredicates) {
  // Two independent predicates between the same two tables -> two
  // distinct merge classes across the cut.
  std::vector<TableInfo> tables(2);
  for (auto& t : tables) {
    t.cardinality = 100;
    t.attribute_domains = {10.0, 10.0};
  }
  std::vector<JoinPredicate> preds;
  preds.push_back({0, 0, 1, 0, 0.1});
  preds.push_back({0, 1, 1, 1, 0.1});
  const Query q(std::move(tables), std::move(preds));
  const OrderClasses orders(q);
  const std::vector<int> classes =
      orders.MergeClassesForCut(TableSet::Single(0), TableSet::Single(1));
  EXPECT_EQ(classes.size(), 2u);
  EXPECT_NE(classes[0], classes[1]);
}

TEST(OrderClassesTest, TableHasClass) {
  const Query q = ChainedQuery();
  const OrderClasses orders(q);
  const int cls = orders.ClassOf(1, 0);
  EXPECT_TRUE(orders.TableHasClass(0, cls));
  EXPECT_TRUE(orders.TableHasClass(1, cls));
  EXPECT_TRUE(orders.TableHasClass(2, cls));  // via attribute 1
  const int lone = orders.ClassOf(0, 1);
  EXPECT_TRUE(orders.TableHasClass(0, lone));
  EXPECT_FALSE(orders.TableHasClass(1, lone));
}

TEST(OrderClassesTest, StarQueryHubClasses) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, 3);
  const Query q = gen.Generate(6);
  const OrderClasses orders(q);
  // Every predicate connects the hub; both of its sides share a class.
  for (const JoinPredicate& p : q.predicates()) {
    EXPECT_EQ(orders.ClassOf(p.left_table, p.left_attribute),
              orders.ClassOf(p.right_table, p.right_attribute));
  }
  EXPECT_GE(orders.num_classes(), 1);
}

}  // namespace
}  // namespace mpqopt
