// Copyright 2026 mpqopt authors.
//
// Concurrency stress for the plan-cache subsystem, aimed at the TSan CI
// job: many threads hammer one PlanCache with interleaved lookups,
// inserts, statistics-epoch bumps, and predicate invalidations while a
// tiny byte budget keeps the LRU churning; then a service-level pass
// mixes repeated and distinct queries across dispatcher threads with
// stats() snapshots racing the traffic. The assertions are about
// invariants (counter conservation, no lost updates), not exact counts —
// the interleavings are the point.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "catalog/generator.h"
#include "plancache/fingerprint.h"
#include "plancache/plan_cache.h"
#include "service/optimizer_service.h"

namespace mpqopt {
namespace {

PlanCacheKey KeyForIndex(int i) {
  PlanCacheKey key;
  key.bytes = {static_cast<uint8_t>(i), static_cast<uint8_t>(i >> 8)};
  key.hash_hi = HashBytes64(key.bytes.data(), key.bytes.size(), 7);
  key.hash_lo = HashBytes64(key.bytes.data(), key.bytes.size(), 8);
  return key;
}

TEST(PlanCacheStressTest, ConcurrentHitMissInvalidateChurn) {
  PlanCacheOptions opts;
  opts.capacity_bytes = 64 << 10;  // small: constant LRU pressure
  opts.num_shards = 4;
  PlanCache cache(opts);

  constexpr int kKeys = 64;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> observed_hits{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t]() {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int i = (op * 31 + t * 17) % kKeys;
        const PlanCacheKey key = KeyForIndex(i);
        switch ((op + t) % 8) {
          case 0: {
            PlanArena arena;
            std::vector<PlanId> best = {arena.MakeScan(
                0, static_cast<double>(i), CostVector::Scalar(i))};
            std::string table("R");
            table += std::to_string(i % 8);
            cache.Insert(key, {{std::move(table), 1.0 * i}}, arena, best);
            break;
          }
          case 5:
            // Rare coarse invalidation racing everything else.
            if (op % 500 == 0) cache.BumpStatisticsEpoch();
            break;
          case 6:
            if (op % 100 == 0) {
              std::string table("R");
              table += std::to_string(i % 8);
              cache.InvalidateTable(table);
            }
            break;
          default: {
            std::shared_ptr<const CachedPlan> hit = cache.Lookup(key);
            if (hit != nullptr) {
              // A served plan is always internally consistent, even mid-
              // churn: the marker scan for key i carries cardinality i.
              ASSERT_EQ(hit->best.size(), 1u);
              ASSERT_DOUBLE_EQ(
                  hit->arena.node(hit->best[0]).cardinality,
                  static_cast<double>(i));
              observed_hits.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const PlanCacheStats stats = cache.stats();
  // Counter conservation: every probe was a hit or a miss, with no lost
  // updates across shards.
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.bytes_in_use, opts.capacity_bytes);
  EXPECT_LE(stats.entries, stats.inserts);
}

TEST(PlanCacheStressTest, ServiceMixedWorkloadWithRacingSnapshots) {
  GeneratorOptions gen_opts;
  gen_opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(gen_opts, 31337);
  constexpr int kDistinct = 4;
  std::vector<Query> distinct;
  for (int i = 0; i < kDistinct; ++i) distinct.push_back(gen.Generate(8));

  MpqOptions opts;
  opts.num_workers = 8;
  ServiceOptions service_opts;
  service_opts.backend_kind = BackendKind::kAsyncBatch;
  service_opts.backend_threads = 2;
  service_opts.enable_plan_cache = true;
  OptimizerService service(service_opts);

  std::atomic<bool> done{false};
  std::thread snapshotter([&service, &done]() {
    // Race stats() against the serving threads; TSan checks the locking.
    while (!done.load(std::memory_order_acquire)) {
      const ServiceStats snap = service.stats();
      ASSERT_LE(snap.cache_hits + snap.cache_misses,
                snap.queries_completed + snap.queries_failed);
      std::this_thread::yield();
    }
  });

  constexpr int kCallers = 6;
  constexpr int kQueriesPerCaller = 10;
  std::vector<std::thread> callers;
  std::atomic<uint64_t> ok_count{0};
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t]() {
      for (int i = 0; i < kQueriesPerCaller; ++i) {
        const Query& q =
            distinct[static_cast<size_t>((i + t) % kDistinct)];
        if (service.Optimize(q, opts).ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_completed, ok_count.load());
  EXPECT_EQ(stats.queries_completed,
            static_cast<uint64_t>(kCallers * kQueriesPerCaller));
  // Every query either hit or authoritatively missed; single-flight means
  // at most one miss per distinct fingerprint... unless an epoch bump or
  // eviction intervened — neither happens here.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries_completed);
  EXPECT_EQ(stats.cache_misses, static_cast<uint64_t>(kDistinct));
}

}  // namespace
}  // namespace mpqopt
