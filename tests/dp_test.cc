// Copyright 2026 mpqopt authors.

#include "optimizer/dp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "catalog/generator.h"
#include "cost/cardinality.h"
#include "optimizer/pruning.h"
#include "plan/plan_validator.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, JoinGraphShape shape, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = shape;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

/// Independent reference: cheapest left-deep plan by enumerating all n!
/// join orders; per join the cheapest algorithm is chosen (valid because
/// the time metric is additive and operator-local).
double BruteForceLinearBest(const Query& q) {
  const CostModel model(Objective::kTime);
  const CardinalityEstimator est(q);
  std::vector<int> order(q.num_tables());
  std::iota(order.begin(), order.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double cost = 0;
    TableSet joined;
    double joined_card = 0;
    for (size_t i = 0; i < order.size(); ++i) {
      const int t = order[i];
      const double scan_card = q.table(t).cardinality;
      cost += model.ScanCost(scan_card).time();
      if (i == 0) {
        joined = TableSet::Single(t);
        joined_card = scan_card;
        continue;
      }
      const TableSet next = joined.With(t);
      const double out = est.Cardinality(next);
      double local = std::numeric_limits<double>::infinity();
      for (JoinAlgorithm alg : kJoinAlgorithms) {
        local = std::min(local,
                         model.LocalJoinTime(alg, joined_card, scan_card, out));
      }
      cost += local;
      joined = next;
      joined_card = out;
    }
    best = std::min(best, cost);
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

/// Independent reference for bushy spaces: hash-map memoized recursion
/// over all splits (no PartitionIndex involved).
double BruteForceBushyBest(const Query& q, TableSet s,
                           std::map<uint64_t, double>* memo,
                           const CostModel& model,
                           const CardinalityEstimator& est) {
  auto it = memo->find(s.bits());
  if (it != memo->end()) return it->second;
  double best;
  if (s.Count() == 1) {
    best = model.ScanCost(q.table(s.Lowest()).cardinality).time();
  } else {
    best = std::numeric_limits<double>::infinity();
    const double out = est.Cardinality(s);
    SubsetEnumerator subsets(s);
    while (subsets.Next()) {
      const TableSet left = subsets.current();
      const TableSet right = s.Minus(left);
      const double lc = BruteForceBushyBest(q, left, memo, model, est);
      const double rc = BruteForceBushyBest(q, right, memo, model, est);
      for (JoinAlgorithm alg : kJoinAlgorithms) {
        best = std::min(best, lc + rc +
                                  model.LocalJoinTime(alg, est.Cardinality(left),
                                                      est.Cardinality(right),
                                                      out));
      }
    }
  }
  (*memo)[s.bits()] = best;
  return best;
}

TEST(DpTest, LinearSerialMatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Query q = RandomQuery(6, JoinGraphShape::kStar, seed);
    DpConfig config;
    config.space = PlanSpace::kLinear;
    StatusOr<DpResult> result = OptimizeSerial(q, config);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().best.size(), 1u);
    const double dp_cost =
        result.value().arena.node(result.value().best[0]).cost.time();
    EXPECT_NEAR(dp_cost / BruteForceLinearBest(q), 1.0, 1e-9) << seed;
  }
}

TEST(DpTest, BushySerialMatchesBruteForce) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    for (JoinGraphShape shape :
         {JoinGraphShape::kChain, JoinGraphShape::kStar}) {
      const Query q = RandomQuery(7, shape, seed);
      DpConfig config;
      config.space = PlanSpace::kBushy;
      StatusOr<DpResult> result = OptimizeSerial(q, config);
      ASSERT_TRUE(result.ok());
      const CostModel model(Objective::kTime);
      const CardinalityEstimator est(q);
      std::map<uint64_t, double> memo;
      const double brute =
          BruteForceBushyBest(q, q.all_tables(), &memo, model, est);
      const double dp_cost =
          result.value().arena.node(result.value().best[0]).cost.time();
      EXPECT_NEAR(dp_cost / brute, 1.0, 1e-9) << seed;
    }
  }
}

TEST(DpTest, BushyNeverWorseThanLinear) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    const Query q = RandomQuery(8, JoinGraphShape::kChain, seed);
    DpConfig linear;
    linear.space = PlanSpace::kLinear;
    DpConfig bushy;
    bushy.space = PlanSpace::kBushy;
    StatusOr<DpResult> lr = OptimizeSerial(q, linear);
    StatusOr<DpResult> br = OptimizeSerial(q, bushy);
    ASSERT_TRUE(lr.ok() && br.ok());
    const double lc = lr.value().arena.node(lr.value().best[0]).cost.time();
    const double bc = br.value().arena.node(br.value().best[0]).cost.time();
    EXPECT_LE(bc, lc * (1 + 1e-12));
  }
}

TEST(DpTest, LinearPlansAreLeftDeep) {
  const Query q = RandomQuery(8, JoinGraphShape::kStar, 31);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsLeftDeep(result.value().arena, result.value().best[0]));
}

TEST(DpTest, ReturnedPlansValidate) {
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    const Query q = RandomQuery(7, JoinGraphShape::kCycle, 33);
    DpConfig config;
    config.space = space;
    StatusOr<DpResult> result = OptimizeSerial(q, config);
    ASSERT_TRUE(result.ok());
    const CostModel model(Objective::kTime);
    PlanValidationOptions opts;
    opts.require_left_deep = space == PlanSpace::kLinear;
    EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0], q,
                             model, opts)
                    .ok());
  }
}

TEST(DpTest, PartitionPlansRespectConstraints) {
  const Query q = RandomQuery(8, JoinGraphShape::kStar, 35);
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    const uint64_t m = 4;
    for (uint64_t part = 0; part < m; ++part) {
      StatusOr<ConstraintSet> constraints =
          ConstraintSet::FromPartitionId(q.num_tables(), space, part, m);
      ASSERT_TRUE(constraints.ok());
      DpConfig config;
      config.space = space;
      StatusOr<DpResult> result =
          RunPartitionDp(q, constraints.value(), config);
      ASSERT_TRUE(result.ok());
      const CostModel model(Objective::kTime);
      PlanValidationOptions opts;
      opts.require_left_deep = space == PlanSpace::kLinear;
      opts.constraints = &constraints.value();
      EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0],
                               q, model, opts)
                      .ok())
          << PlanSpaceName(space) << " partition " << part;
    }
  }
}

TEST(DpTest, MinOverPartitionsEqualsSerialOptimum) {
  // The exactness property behind Algorithm 1: partition-optimal plans
  // pruned at the master give the global optimum.
  const Query q = RandomQuery(8, JoinGraphShape::kStar, 37);
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    DpConfig config;
    config.space = space;
    StatusOr<DpResult> serial = OptimizeSerial(q, config);
    ASSERT_TRUE(serial.ok());
    const double serial_cost =
        serial.value().arena.node(serial.value().best[0]).cost.time();
    const uint64_t m = space == PlanSpace::kLinear ? 16 : 4;
    double best = std::numeric_limits<double>::infinity();
    for (uint64_t part = 0; part < m; ++part) {
      StatusOr<ConstraintSet> constraints =
          ConstraintSet::FromPartitionId(q.num_tables(), space, part, m);
      ASSERT_TRUE(constraints.ok());
      StatusOr<DpResult> result =
          RunPartitionDp(q, constraints.value(), config);
      ASSERT_TRUE(result.ok());
      best = std::min(
          best, result.value().arena.node(result.value().best[0]).cost.time());
      // Each partition optimum is no better than the global optimum.
      EXPECT_GE(result.value().arena.node(result.value().best[0]).cost.time(),
                serial_cost * (1 - 1e-12));
    }
    EXPECT_NEAR(best / serial_cost, 1.0, 1e-9) << PlanSpaceName(space);
  }
}

TEST(DpTest, StatsReportAdmissibleSets) {
  const Query q = RandomQuery(8, JoinGraphShape::kStar, 39);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial.value().stats.admissible_sets, 1 << 8);

  StatusOr<ConstraintSet> constraints =
      ConstraintSet::FromPartitionId(8, PlanSpace::kLinear, 0, 4);
  ASSERT_TRUE(constraints.ok());
  StatusOr<DpResult> part = RunPartitionDp(q, constraints.value(), config);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part.value().stats.admissible_sets, 256 * 9 / 16);  // (3/4)^2
}

TEST(DpTest, LinearSplitCountUnconstrained) {
  // Unconstrained linear DP tries sum over k>=2 of C(n,k)*k splits.
  const int n = 7;
  const Query q = RandomQuery(n, JoinGraphShape::kChain, 41);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  // sum_{k=0..n} C(n,k)*k = n*2^(n-1); subtract k=1 terms (n sets * 1).
  const int64_t expected = int64_t{n} * (1 << (n - 1)) - n;
  EXPECT_EQ(result.value().stats.splits_tried, expected);
  EXPECT_EQ(result.value().stats.plans_costed,
            expected * kNumJoinAlgorithms);
}

TEST(DpTest, SingleTableQuery) {
  const Query q = RandomQuery(1, JoinGraphShape::kStar, 43);
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    DpConfig config;
    config.space = space;
    StatusOr<DpResult> result = OptimizeSerial(q, config);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().best.size(), 1u);
    EXPECT_TRUE(
        result.value().arena.node(result.value().best[0]).IsScan());
  }
}

TEST(DpTest, TwoTableQueryPicksCheaperOuter) {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = 1000;
  tables[1].cardinality = 10;
  for (auto& t : tables) t.attribute_domains = {10.0};
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0, 0.1}};
  const Query q(std::move(tables), std::move(preds));
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  // Both orders considered; the optimizer must not be worse than either.
  const double cost =
      result.value().arena.node(result.value().best[0]).cost.time();
  EXPECT_NEAR(cost / BruteForceLinearBest(q), 1.0, 1e-12);
}

TEST(DpTest, RejectsMismatchedConstraintSpace) {
  const Query q = RandomQuery(6, JoinGraphShape::kStar, 45);
  DpConfig config;
  config.space = PlanSpace::kBushy;
  StatusOr<DpResult> result =
      RunPartitionDp(q, ConstraintSet::None(PlanSpace::kLinear), config);
  EXPECT_FALSE(result.ok());
}

TEST(DpTest, RejectsTooLargeMemo) {
  const Query q = RandomQuery(20, JoinGraphShape::kStar, 47);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.max_memo_entries = 1000;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(DpTest, RejectsBadAlpha) {
  const Query q = RandomQuery(4, JoinGraphShape::kStar, 49);
  DpConfig config;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = 0.5;
  EXPECT_FALSE(OptimizeSerial(q, config).ok());
}

TEST(DpTest, RejectsInvalidQuery) {
  Query q;  // empty
  DpConfig config;
  EXPECT_FALSE(OptimizeSerial(q, config).ok());
}

// ---------------------------------------------------------------------
// Multi-objective mode.
// ---------------------------------------------------------------------

/// Exhaustive exact Pareto frontier of all bushy plans of `s` (reference
/// implementation, independent of the DP under test).
std::vector<CostVector> ExactFrontier(const Query& q, TableSet s,
                                      std::map<uint64_t,
                                               std::vector<CostVector>>* memo,
                                      const CostModel& model,
                                      const CardinalityEstimator& est,
                                      bool linear) {
  auto it = memo->find(s.bits());
  if (it != memo->end()) return it->second;
  std::vector<CostVector> frontier;
  const auto identity = [](const CostVector& c) -> const CostVector& {
    return c;
  };
  if (s.Count() == 1) {
    frontier.push_back(model.ScanCost(q.table(s.Lowest()).cardinality));
  } else {
    const double out = est.Cardinality(s);
    SubsetEnumerator subsets(s);
    while (subsets.Next()) {
      const TableSet left = subsets.current();
      const TableSet right = s.Minus(left);
      if (linear && right.Count() != 1) continue;
      const auto lf = ExactFrontier(q, left, memo, model, est, linear);
      const auto rf = ExactFrontier(q, right, memo, model, est, linear);
      for (const CostVector& lc : lf) {
        for (const CostVector& rc : rf) {
          for (JoinAlgorithm alg : kJoinAlgorithms) {
            ParetoInsert(&frontier,
                         model.JoinCost(alg, lc, rc, est.Cardinality(left),
                                        est.Cardinality(right), out),
                         identity, 1.0);
          }
        }
      }
    }
  }
  (*memo)[s.bits()] = frontier;
  return frontier;
}

class MultiObjectiveDpTest
    : public ::testing::TestWithParam<std::tuple<PlanSpace, double>> {};

TEST_P(MultiObjectiveDpTest, FrontierAlphaCoversExactFrontier) {
  const auto [space, alpha] = GetParam();
  const Query q = RandomQuery(6, JoinGraphShape::kStar, 51);
  DpConfig config;
  config.space = space;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = alpha;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().best.empty());

  const CostModel model(Objective::kTimeAndBuffer);
  const CardinalityEstimator est(q);
  std::map<uint64_t, std::vector<CostVector>> memo;
  const std::vector<CostVector> exact =
      ExactFrontier(q, q.all_tables(), &memo, model, est,
                    space == PlanSpace::kLinear);

  std::vector<CostVector> returned;
  for (PlanId id : result.value().best) {
    returned.push_back(result.value().arena.node(id).cost);
  }
  // Formal guarantee of the pruning function across the whole DP: for a
  // possible plan with cost c, a plan with cost <= alpha^d * c where the
  // per-insert alpha compounds along the plan depth. Empirically the
  // compounding slack is far smaller; we check the single-alpha bound
  // with a small numerical cushion.
  EXPECT_TRUE(AlphaCovers(returned, exact, alpha * (1 + 1e-9)))
      << PlanSpaceName(space) << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    SpacesAndAlphas, MultiObjectiveDpTest,
    ::testing::Values(std::make_tuple(PlanSpace::kLinear, 10.0),
                      std::make_tuple(PlanSpace::kBushy, 10.0),
                      std::make_tuple(PlanSpace::kLinear, 2.0),
                      std::make_tuple(PlanSpace::kBushy, 2.0)));

TEST(MultiObjectiveDpTest, FrontierPlansValidate) {
  const Query q = RandomQuery(6, JoinGraphShape::kChain, 53);
  DpConfig config;
  config.space = PlanSpace::kBushy;
  config.objective = Objective::kTimeAndBuffer;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  const CostModel model(Objective::kTimeAndBuffer);
  for (PlanId id : result.value().best) {
    EXPECT_TRUE(ValidatePlan(result.value().arena, id, q, model).ok());
  }
}

TEST(MultiObjectiveDpTest, FrontierMutuallyNonDominated) {
  const Query q = RandomQuery(7, JoinGraphShape::kStar, 55);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = 1.0;
  StatusOr<DpResult> result = OptimizeSerial(q, config);
  ASSERT_TRUE(result.ok());
  const auto& arena = result.value().arena;
  for (PlanId a : result.value().best) {
    for (PlanId b : result.value().best) {
      if (a == b) continue;
      EXPECT_FALSE(arena.node(a).cost.StrictlyDominates(arena.node(b).cost));
    }
  }
}

TEST(MultiObjectiveDpTest, TimeMetricMatchesSingleObjectiveOptimum) {
  // With alpha = 1 the frontier's best-time plan must equal the
  // single-objective optimum.
  const Query q = RandomQuery(7, JoinGraphShape::kStar, 57);
  DpConfig mo;
  mo.space = PlanSpace::kBushy;
  mo.objective = Objective::kTimeAndBuffer;
  mo.alpha = 1.0;
  DpConfig so;
  so.space = PlanSpace::kBushy;
  StatusOr<DpResult> mo_result = OptimizeSerial(q, mo);
  StatusOr<DpResult> so_result = OptimizeSerial(q, so);
  ASSERT_TRUE(mo_result.ok() && so_result.ok());
  double best_time = std::numeric_limits<double>::infinity();
  for (PlanId id : mo_result.value().best) {
    best_time =
        std::min(best_time, mo_result.value().arena.node(id).cost.time());
  }
  const double so_time =
      so_result.value().arena.node(so_result.value().best[0]).cost.time();
  EXPECT_NEAR(best_time / so_time, 1.0, 1e-9);
}

}  // namespace
}  // namespace mpqopt
