// Copyright 2026 mpqopt authors.
//
// Session-subsystem tests: the stateful-task registry, the worker-side
// SessionStore (TTL GC, per-session byte cap, idempotent close), the
// in-process LocalSessionHandle on every in-process backend (including
// the fork-isolated ProcessBackend, whose broadcasts must mutate
// master-side state), and the RpcSessionHandle over real loopback
// workers — lifecycle, cross-backend traffic identity, reconnect +
// replay recovery, node migration, and the byte-cap / TTL edges over
// the wire.

#include "cluster/session/session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "catalog/generator.h"
#include "cluster/rpc_backend.h"
#include "cluster/session/session_store.h"
#include "cluster/session/session_wire.h"
#include "cluster/session/stateful_task.h"
#include "common/serialize.h"
#include "sma/sma_node.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

std::vector<uint8_t> Bytes(const char* s) {
  return std::vector<uint8_t>(s, s + std::strlen(s));
}

std::vector<uint8_t> Peek() { return {kAccumulatorPeekOp}; }

std::vector<uint8_t> Append(const char* s) {
  std::vector<uint8_t> request = {kAccumulatorAppendOp};
  const std::vector<uint8_t> body = Bytes(s);
  request.insert(request.end(), body.begin(), body.end());
  return request;
}

// ------------------------------------------------------------ registry

TEST(StatefulTaskRegistryTest, KnownKindsResolveUnknownDoNot) {
  EXPECT_NE(StatefulTaskForKind(StatefulTaskKind::kSmaNode), nullptr);
  EXPECT_NE(StatefulTaskForKind(StatefulTaskKind::kAccumulator), nullptr);
  EXPECT_EQ(StatefulTaskForKind(StatefulTaskKind::kUnknownStateful), nullptr);
  EXPECT_EQ(StatefulTaskForKind(static_cast<StatefulTaskKind>(200)), nullptr);
  EXPECT_STREQ(StatefulTaskKindName(StatefulTaskKind::kSmaNode), "sma-node");
}

TEST(StatefulTaskRegistryTest, AccumulatorTripleWorksDirectly) {
  const StatefulTaskVtable* vtable =
      StatefulTaskForKind(StatefulTaskKind::kAccumulator);
  ASSERT_NE(vtable, nullptr);
  StatusOr<std::unique_ptr<SessionState>> state = vtable->open(Bytes("ab"));
  ASSERT_TRUE(state.ok());
  StatusOr<std::vector<uint8_t>> peeked =
      vtable->step(state.value().get(), Peek());
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(peeked.value(), Bytes("ab"));
  ASSERT_TRUE(vtable->step(state.value().get(), Append("cd")).ok());
  peeked = vtable->step(state.value().get(), Peek());
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(peeked.value(), Bytes("abcd"));
  EXPECT_GE(state.value()->ApproxBytes(), size_t{4});
  EXPECT_TRUE(vtable->close(state.value().get()).ok());
}

TEST(StatefulTaskRegistryTest, SmaOutOfOrderChunkFailsTheStepNotTheNode) {
  // A replica reconstructed from wire bytes must treat an assignment
  // whose sub-plans were never broadcast as a step error (Corruption),
  // never an abort — a remote master's bug must not kill the worker
  // process hosting other masters' replicas.
  GeneratorOptions gen_opts;
  gen_opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(gen_opts, 99);
  const Query q = gen.Generate(4);
  const StatefulTaskVtable* vtable =
      StatefulTaskForKind(StatefulTaskKind::kSmaNode);
  ASSERT_NE(vtable, nullptr);
  StatusOr<std::unique_ptr<SessionState>> state =
      vtable->open(SmaNode::BuildOpenRequest(q, SmaNodeOptions{}));
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  // Level-3 set 0b0111 before any level-2 broadcast: no sub-plans yet.
  ByteWriter writer;
  writer.WriteU8(kSmaComputeChunkOp);
  writer.WriteU32(1);
  writer.WriteU64(0b0111);
  StatusOr<std::vector<uint8_t>> response =
      vtable->step(state.value().get(), writer.Release());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCorruption);
}

// -------------------------------------------------------- SessionStore

TEST(SessionStoreTest, OpenStepCloseLifecycle) {
  SessionStore store(SessionStoreOptions{});
  SessionReply reply = store.Handle(
      kSessionOpenFrame,
      BuildSessionOpenPayload(7, StatefulTaskKind::kAccumulator, Bytes("x")));
  EXPECT_EQ(reply.kind, RpcReplyKind::kOk);
  EXPECT_EQ(store.size(), 1u);

  reply = store.Handle(kSessionStepFrame,
                       BuildSessionStepPayload(7, Append("y")));
  EXPECT_EQ(reply.kind, RpcReplyKind::kOk);
  reply = store.Handle(kSessionStepFrame, BuildSessionStepPayload(7, Peek()));
  EXPECT_EQ(reply.kind, RpcReplyKind::kOk);
  EXPECT_EQ(reply.body, Bytes("xy"));

  reply = store.Handle(kSessionCloseFrame, BuildSessionClosePayload(7));
  EXPECT_EQ(reply.kind, RpcReplyKind::kOk);
  EXPECT_EQ(store.size(), 0u);
  // Stepping a closed session is a SESSION error (replica gone,
  // recoverable by re-open) — not a task error.
  reply = store.Handle(kSessionStepFrame, BuildSessionStepPayload(7, Peek()));
  EXPECT_EQ(reply.kind, RpcReplyKind::kSessionError);
  // Closing again is fine (idempotent).
  reply = store.Handle(kSessionCloseFrame, BuildSessionClosePayload(7));
  EXPECT_EQ(reply.kind, RpcReplyKind::kOk);
}

TEST(SessionStoreTest, SessionsAreIsolatedById) {
  SessionStore store(SessionStoreOptions{});
  store.Handle(kSessionOpenFrame,
               BuildSessionOpenPayload(1, StatefulTaskKind::kAccumulator,
                                       Bytes("a")));
  store.Handle(kSessionOpenFrame,
               BuildSessionOpenPayload(2, StatefulTaskKind::kAccumulator,
                                       Bytes("b")));
  store.Handle(kSessionStepFrame, BuildSessionStepPayload(1, Append("1")));
  SessionReply reply =
      store.Handle(kSessionStepFrame, BuildSessionStepPayload(2, Peek()));
  EXPECT_EQ(reply.body, Bytes("b"));
  reply = store.Handle(kSessionStepFrame, BuildSessionStepPayload(1, Peek()));
  EXPECT_EQ(reply.body, Bytes("a1"));
}

TEST(SessionStoreTest, UnknownStatefulKindIsATaskError) {
  SessionStore store(SessionStoreOptions{});
  const SessionReply reply = store.Handle(
      kSessionOpenFrame,
      BuildSessionOpenPayload(9, static_cast<StatefulTaskKind>(123), {}));
  EXPECT_EQ(reply.kind, RpcReplyKind::kTaskError);
  EXPECT_EQ(store.size(), 0u);
}

TEST(SessionStoreTest, MalformedFramesAreTaskErrorsNotCrashes) {
  SessionStore store(SessionStoreOptions{});
  EXPECT_EQ(store.Handle(kSessionOpenFrame, {1, 2}).kind,
            RpcReplyKind::kTaskError);
  EXPECT_EQ(store.Handle(kSessionStepFrame, {}).kind,
            RpcReplyKind::kTaskError);
  EXPECT_EQ(store.Handle(0x7f, {}).kind, RpcReplyKind::kTaskError);
}

TEST(SessionStoreTest, TtlExpiryReclaimsAbandonedSessions) {
  SessionStoreOptions options;
  options.ttl_ms = 50;
  SessionStore store(options);
  store.Handle(kSessionOpenFrame,
               BuildSessionOpenPayload(3, StatefulTaskKind::kAccumulator,
                                       Bytes("z")));
  EXPECT_EQ(store.size(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  store.SweepExpired();
  EXPECT_EQ(store.size(), 0u);
  const SessionReply reply =
      store.Handle(kSessionStepFrame, BuildSessionStepPayload(3, Peek()));
  EXPECT_EQ(reply.kind, RpcReplyKind::kSessionError);
}

TEST(SessionStoreTest, TouchedSessionsOutliveTheTtlOfIdleOnes) {
  SessionStoreOptions options;
  options.ttl_ms = 150;
  SessionStore store(options);
  store.Handle(kSessionOpenFrame,
               BuildSessionOpenPayload(1, StatefulTaskKind::kAccumulator,
                                       Bytes("live")));
  store.Handle(kSessionOpenFrame,
               BuildSessionOpenPayload(2, StatefulTaskKind::kAccumulator,
                                       Bytes("idle")));
  // Keep session 1 warm past session 2's expiry.
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(store
                  .Handle(kSessionStepFrame,
                          BuildSessionStepPayload(1, Peek()))
                  .kind,
              RpcReplyKind::kOk);
  }
  EXPECT_EQ(store.size(), 1u);  // the idle one was swept
  EXPECT_EQ(
      store.Handle(kSessionStepFrame, BuildSessionStepPayload(2, Peek())).kind,
      RpcReplyKind::kSessionError);
}

TEST(SessionStoreTest, ByteCapDropsTheReplicaDeterministically) {
  SessionStoreOptions options;
  options.max_session_bytes = 256;
  SessionStore store(options);
  SessionReply reply = store.Handle(
      kSessionOpenFrame,
      BuildSessionOpenPayload(4, StatefulTaskKind::kAccumulator, Bytes("s")));
  ASSERT_EQ(reply.kind, RpcReplyKind::kOk);
  // Grow the replica far past the cap: a TASK error (deterministic — a
  // replay would exceed the cap again), and the replica is dropped NOW.
  std::vector<uint8_t> big(1024, 'x');
  big.insert(big.begin(), kAccumulatorAppendOp);
  reply = store.Handle(kSessionStepFrame, BuildSessionStepPayload(4, big));
  EXPECT_EQ(reply.kind, RpcReplyKind::kTaskError);
  const std::string message(reply.body.begin(), reply.body.end());
  EXPECT_NE(message.find("byte cap"), std::string::npos) << message;
  EXPECT_EQ(store.size(), 0u);
  reply = store.Handle(kSessionStepFrame, BuildSessionStepPayload(4, Peek()));
  EXPECT_EQ(reply.kind, RpcReplyKind::kSessionError);
}

// ------------------------------------------------- handles, per backend

class SessionBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kRpc) farm_.Start(2);
  }

  std::shared_ptr<ExecutionBackend> MakeTestBackend() {
    BackendOptions options;
    options.max_threads = 2;
    options.workers_addr = farm_.workers_addr();
    StatusOr<std::shared_ptr<ExecutionBackend>> backend =
        MakeBackend(GetParam(), options);
    MPQOPT_CHECK(backend.ok());
    return std::move(backend).value();
  }

  RpcWorkerFarm farm_;
};

TEST_P(SessionBackendTest, StatePersistsAcrossRoundsAndIsPerNode) {
  auto backend = MakeTestBackend();
  StatusOr<std::unique_ptr<SessionHandle>> session_or = backend->OpenSession(
      StatefulTaskKind::kAccumulator, {Bytes("a"), Bytes("b"), Bytes("c")});
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  std::unique_ptr<SessionHandle>& session = session_or.value();
  EXPECT_EQ(session->num_nodes(), 3u);

  // Broadcast mutates every replica; later steps must see it — on the
  // process backend this is only true because broadcasts run on the
  // master-side state, not in a forked child.
  StatusOr<RoundResult> bcast = session->Broadcast(Append("+"));
  ASSERT_TRUE(bcast.ok()) << bcast.status().ToString();
  StatusOr<RoundResult> peek =
      session->Step({Peek(), Peek(), Peek()});
  ASSERT_TRUE(peek.ok()) << peek.status().ToString();
  EXPECT_EQ(peek.value().responses[0], Bytes("a+"));
  EXPECT_EQ(peek.value().responses[1], Bytes("b+"));
  EXPECT_EQ(peek.value().responses[2], Bytes("c+"));

  EXPECT_TRUE(session->Close().ok());
  EXPECT_TRUE(session->Close().ok());  // idempotent

  const SessionCounterSnapshot counters = backend->health().sessions;
  EXPECT_EQ(counters.sessions_opened, 1u);
  EXPECT_EQ(counters.session_rounds, 2u);
  EXPECT_EQ(counters.sessions_failed, 0u);
}

TEST_P(SessionBackendTest, TrafficAccountingMatchesAcrossBackends) {
  // The same session script must report identical bytes and messages on
  // every backend — the property that lets SMA's network series be
  // measured over real sockets.
  const auto run = [](ExecutionBackend* backend) {
    StatusOr<std::unique_ptr<SessionHandle>> session =
        backend->OpenSession(StatefulTaskKind::kAccumulator,
                             {Bytes("aa"), Bytes("bb")});
    MPQOPT_CHECK(session.ok());
    TrafficStats traffic;
    StatusOr<RoundResult> round =
        session.value()->Broadcast(Append("payload"));
    MPQOPT_CHECK(round.ok());
    traffic.Merge(round.value().traffic);
    round = session.value()->Step({Peek(), Peek()});
    MPQOPT_CHECK(round.ok());
    traffic.Merge(round.value().traffic);
    return traffic;
  };
  auto reference = MakeBackend(BackendKind::kThread, NetworkModel{}, 1);
  const TrafficStats expect = run(reference.get());
  auto backend = MakeTestBackend();
  const TrafficStats actual = run(backend.get());
  EXPECT_EQ(actual.bytes_sent, expect.bytes_sent);
  EXPECT_EQ(actual.messages, expect.messages);
}

TEST_P(SessionBackendTest, UnregisteredKindFailsCleanly) {
  auto backend = MakeTestBackend();
  StatusOr<std::unique_ptr<SessionHandle>> session =
      backend->OpenSession(static_cast<StatefulTaskKind>(99), {Bytes("x")});
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(SessionBackendTest, StepTaskErrorFailsTheRound) {
  auto backend = MakeTestBackend();
  StatusOr<std::unique_ptr<SessionHandle>> session =
      backend->OpenSession(StatefulTaskKind::kAccumulator, {Bytes("x")});
  ASSERT_TRUE(session.ok());
  // Op 250 is not a valid accumulator op: a deterministic task error.
  StatusOr<RoundResult> round = session.value()->Step({{250}});
  ASSERT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("unknown accumulator op"),
            std::string::npos)
      << round.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SessionBackendTest,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kProcess,
                                           BackendKind::kAsyncBatch,
                                           BackendKind::kRpc),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

// ------------------------------------------------------ rpc-only edges

BackendOptions FastRecoveryOptions(const RpcWorkerFarm& farm,
                                   int retries = 5) {
  BackendOptions options;
  options.workers_addr = farm.workers_addr();
  options.worker_retries = retries;
  options.worker_backoff_ms = 20;
  options.worker_backoff_max_ms = 200;
  return options;
}

std::shared_ptr<ExecutionBackend> ConnectFarm(const RpcWorkerFarm& farm,
                                              int retries = 5) {
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, FastRecoveryOptions(farm, retries));
  MPQOPT_CHECK(backend.ok());
  return std::move(backend).value();
}

TEST(RpcSessionTest, MoreNodesThanWorkersShareConnections) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  StatusOr<std::unique_ptr<SessionHandle>> session = backend->OpenSession(
      StatefulTaskKind::kAccumulator,
      {Bytes("0"), Bytes("1"), Bytes("2"), Bytes("3"), Bytes("4")});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(session.value()->Broadcast(Append("!")).ok());
  StatusOr<RoundResult> peek = session.value()->Step(
      std::vector<std::vector<uint8_t>>(5, Peek()));
  ASSERT_TRUE(peek.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(peek.value().responses[i],
              Bytes((std::to_string(i) + "!").c_str()));
  }
}

TEST(RpcSessionTest, RestartedWorkerIsRecoveredByReplay) {
  RpcWorkerFarm farm;
  farm.Start(1);
  auto backend = ConnectFarm(farm);
  StatusOr<std::unique_ptr<SessionHandle>> session =
      backend->OpenSession(StatefulTaskKind::kAccumulator, {Bytes("s")});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Broadcast(Append("1")).ok());
  ASSERT_TRUE(session.value()->Broadcast(Append("2")).ok());

  // The worker dies and comes back empty: the replica must be rebuilt
  // transparently from open + the recorded broadcasts.
  farm.Kill(0);
  farm.Restart(0);
  StatusOr<RoundResult> peek = session.value()->Step({Peek()});
  ASSERT_TRUE(peek.ok()) << peek.status().ToString();
  EXPECT_EQ(peek.value().responses[0], Bytes("s12"));
  const SessionCounterSnapshot counters = backend->health().sessions;
  EXPECT_GE(counters.sessions_recovered, 1u);
  EXPECT_EQ(counters.sessions_failed, 0u);
}

TEST(RpcSessionTest, NodesMigrateToSurvivorsWhenAWorkerStaysDead) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm, /*retries=*/1);
  StatusOr<std::unique_ptr<SessionHandle>> session = backend->OpenSession(
      StatefulTaskKind::kAccumulator, {Bytes("a"), Bytes("b")});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Broadcast(Append("+")).ok());
  // One worker dies for good; its node must MIGRATE to the survivor
  // (re-open + replay there) instead of failing the session.
  farm.Kill(0);
  StatusOr<RoundResult> peek = session.value()->Step({Peek(), Peek()});
  ASSERT_TRUE(peek.ok()) << peek.status().ToString();
  EXPECT_EQ(peek.value().responses[0], Bytes("a+"));
  EXPECT_EQ(peek.value().responses[1], Bytes("b+"));
}

TEST(RpcSessionTest, TtlExpiredReplicaIsRebuiltTransparently) {
  RpcWorkerFarm farm;
  farm.Start(1, {"--session-ttl-ms=100"});
  auto backend = ConnectFarm(farm);
  StatusOr<std::unique_ptr<SessionHandle>> session =
      backend->OpenSession(StatefulTaskKind::kAccumulator, {Bytes("t")});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Broadcast(Append("x")).ok());
  // Abandon the session well past its TTL: the worker reclaims the
  // replica (bounded memory), and the next step rebuilds it by replay.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  StatusOr<RoundResult> peek = session.value()->Step({Peek()});
  ASSERT_TRUE(peek.ok()) << peek.status().ToString();
  EXPECT_EQ(peek.value().responses[0], Bytes("tx"));
  EXPECT_GE(backend->health().sessions.sessions_recovered, 1u);
}

TEST(RpcSessionTest, ByteCapRejectionIsDeterministicAndSticky) {
  RpcWorkerFarm farm;
  farm.Start(1, {"--session-max-bytes=4096"});
  auto backend = ConnectFarm(farm);
  StatusOr<std::unique_ptr<SessionHandle>> session =
      backend->OpenSession(StatefulTaskKind::kAccumulator, {Bytes("c")});
  ASSERT_TRUE(session.ok());
  std::vector<uint8_t> big(16 * 1024, 'x');
  big.insert(big.begin(), kAccumulatorAppendOp);
  StatusOr<RoundResult> round = session.value()->Broadcast(big);
  ASSERT_FALSE(round.ok());
  EXPECT_NE(round.status().message().find("byte cap"), std::string::npos)
      << round.status().ToString();
  // The session failed deterministically — no replay loop, and every
  // later call fails fast with the same error.
  StatusOr<RoundResult> after = session.value()->Step({Peek()});
  ASSERT_FALSE(after.ok());
  EXPECT_NE(after.status().message().find("byte cap"), std::string::npos);
  EXPECT_GE(backend->health().sessions.sessions_failed, 1u);
  // The worker itself is fine: a fresh session serves normally.
  StatusOr<std::unique_ptr<SessionHandle>> fresh =
      backend->OpenSession(StatefulTaskKind::kAccumulator, {Bytes("ok")});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  StatusOr<RoundResult> peek = fresh.value()->Step({Peek()});
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek.value().responses[0], Bytes("ok"));
}

TEST(RpcSessionTest, ConcurrentSessionsOnOneBackendStayIsolated) {
  RpcWorkerFarm farm;
  farm.Start(2);
  auto backend = ConnectFarm(farm);
  constexpr int kSessions = 4;
  std::vector<int> failures(kSessions, 0);
  std::vector<std::thread> drivers;
  for (int s = 0; s < kSessions; ++s) {
    drivers.emplace_back([&backend, &failures, s]() {
      const std::string seed = "s" + std::to_string(s);
      StatusOr<std::unique_ptr<SessionHandle>> session = backend->OpenSession(
          StatefulTaskKind::kAccumulator, {Bytes(seed.c_str())});
      if (!session.ok()) {
        ++failures[s];
        return;
      }
      std::string expect = seed;
      for (int round = 0; round < 10; ++round) {
        const std::string chunk = std::to_string(round % 10);
        if (!session.value()->Broadcast(Append(chunk.c_str())).ok()) {
          ++failures[s];
          return;
        }
        expect += chunk;
        StatusOr<RoundResult> peek = session.value()->Step({Peek()});
        if (!peek.ok() ||
            peek.value().responses[0] != Bytes(expect.c_str())) {
          ++failures[s];
          return;
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(failures[s], 0) << "session driver " << s;
  }
}

}  // namespace
}  // namespace mpqopt
