// Copyright 2026 mpqopt authors.
//
// Unit tests of the framed-message TCP transport under RpcBackend:
// framing round-trips, oversized-frame rejection, peer disconnects in
// every phase of a frame, and bounded (non-hanging) connect/accept/recv
// waits.

#include "net/frame_transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace mpqopt {
namespace {

/// A connected loopback (client, server) socket pair built from the real
/// listener/dial path.
struct TcpPair {
  Socket client;
  Socket server;
};

TcpPair MakeTcpPair() {
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  StatusOr<Socket> client = DialTcp(
      "127.0.0.1:" + std::to_string(listener.value().port()), 2000);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  StatusOr<Socket> server = listener.value().Accept(2000);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  TcpPair pair;
  pair.client = std::move(client).value();
  pair.server = std::move(server).value();
  return pair;
}

TEST(FrameTransportTest, FramingRoundTrip) {
  TcpPair pair = MakeTcpPair();
  std::vector<uint8_t> payload(1 << 16);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE(SendFrame(pair.client.fd(), 42, payload).ok());
  Frame received;
  ASSERT_TRUE(RecvFrame(pair.server.fd(), &received).ok());
  EXPECT_EQ(received.kind, 42);
  EXPECT_EQ(received.payload, payload);

  // And back the other way, with an empty payload.
  ASSERT_TRUE(SendFrame(pair.server.fd(), 7, {}).ok());
  ASSERT_TRUE(RecvFrame(pair.client.fd(), &received).ok());
  EXPECT_EQ(received.kind, 7);
  EXPECT_TRUE(received.payload.empty());
}

TEST(FrameTransportTest, ManyFramesInOrderOnOneStream) {
  TcpPair pair = MakeTcpPair();
  for (uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(SendFrame(pair.client.fd(), i, {i, i, i}).ok());
  }
  for (uint8_t i = 0; i < 50; ++i) {
    Frame frame;
    ASSERT_TRUE(RecvFrame(pair.server.fd(), &frame).ok());
    EXPECT_EQ(frame.kind, i);
    EXPECT_EQ(frame.payload, (std::vector<uint8_t>{i, i, i}));
  }
}

TEST(FrameTransportTest, OversizedFrameIsRejectedByReceiver) {
  TcpPair pair = MakeTcpPair();
  // Hand-craft a header whose length prefix exceeds the limit; the
  // receiver must reject it from the header alone, before any allocation.
  uint8_t header[9];
  header[0] = 1;
  const uint64_t huge = kMaxFramePayloadBytes + 1;
  for (int i = 0; i < 8; ++i) {
    header[1 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  ASSERT_EQ(::send(pair.client.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  const Status s = RecvFrame(pair.server.fd(), &frame);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("frame size limit"), std::string::npos);
}

TEST(FrameTransportTest, SendToClosedPeerFailsWithoutSigpipe) {
  TcpPair pair = MakeTcpPair();
  pair.server.Close();
  // Once the reset propagates, writes must fail with a Status instead of
  // killing the process with SIGPIPE. The first send can still succeed
  // into the socket buffer, so push until the error surfaces.
  const std::vector<uint8_t> payload(1 << 20, 0xab);
  Status s = Status::OK();
  for (int attempt = 0; attempt < 8 && s.ok(); ++attempt) {
    s = SendFrame(pair.client.fd(), 1, payload);
  }
  EXPECT_FALSE(s.ok());
}

TEST(FrameTransportTest, CleanPeerCloseBetweenFramesIsNotFound) {
  TcpPair pair = MakeTcpPair();
  pair.client.Close();
  Frame frame;
  const Status s = RecvFrame(pair.server.fd(), &frame);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("peer closed"), std::string::npos);
}

TEST(FrameTransportTest, PeerDisconnectMidHeaderIsCorruption) {
  TcpPair pair = MakeTcpPair();
  const uint8_t partial_header[3] = {1, 2, 3};
  ASSERT_EQ(::send(pair.client.fd(), partial_header, sizeof(partial_header), 0),
            static_cast<ssize_t>(sizeof(partial_header)));
  pair.client.Close();
  Frame frame;
  const Status s = RecvFrame(pair.server.fd(), &frame);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("mid-frame"), std::string::npos);
}

TEST(FrameTransportTest, PeerDisconnectMidPayloadIsCorruption) {
  TcpPair pair = MakeTcpPair();
  // A valid header promising 100 payload bytes, but only 10 arrive.
  uint8_t header[9] = {0};
  header[0] = 5;
  header[1] = 100;
  ASSERT_EQ(::send(pair.client.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  const uint8_t some[10] = {0};
  ASSERT_EQ(::send(pair.client.fd(), some, sizeof(some), 0),
            static_cast<ssize_t>(sizeof(some)));
  pair.client.Close();
  Frame frame;
  const Status s = RecvFrame(pair.server.fd(), &frame);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("mid-frame"), std::string::npos);
}

TEST(FrameTransportTest, RecvDeadlineFiresMidHeader) {
  // The peer sends PART of a header and then stalls: the deadline is
  // absolute over the whole frame, so trickled bytes must not stretch
  // it.
  TcpPair pair = MakeTcpPair();
  const uint8_t partial_header[4] = {7, 1, 2, 3};
  ASSERT_EQ(::send(pair.client.fd(), partial_header, sizeof(partial_header), 0),
            static_cast<ssize_t>(sizeof(partial_header)));
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  const Status s = RecvFrame(pair.server.fd(), &frame, /*timeout_ms=*/150);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("timed out"), std::string::npos);
  EXPECT_GE(elapsed, 0.1);
  EXPECT_LT(elapsed, 5.0);
}

TEST(FrameTransportTest, RecvDeadlineFiresMidPayload) {
  // A complete header promising 100 payload bytes, 10 of which arrive;
  // the receiver must give up at the deadline, not wait for the rest.
  TcpPair pair = MakeTcpPair();
  uint8_t header[9] = {0};
  header[0] = 5;
  header[1] = 100;
  ASSERT_EQ(::send(pair.client.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  const uint8_t some[10] = {0};
  ASSERT_EQ(::send(pair.client.fd(), some, sizeof(some), 0),
            static_cast<ssize_t>(sizeof(some)));
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  const Status s = RecvFrame(pair.server.fd(), &frame, /*timeout_ms=*/150);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, 5.0);
}

TEST(FrameTransportTest, OversizedHeaderRejectionLeavesTheConnectionUsable) {
  // An oversized length prefix is rejected from the header alone, after
  // exactly the 9 header bytes were consumed — so when the sender never
  // follows up with the bogus payload, the stream is not poisoned and
  // the next valid frame still parses.
  TcpPair pair = MakeTcpPair();
  uint8_t header[9];
  header[0] = 1;
  const uint64_t huge = kMaxFramePayloadBytes + 1;
  for (int i = 0; i < 8; ++i) {
    header[1 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  ASSERT_EQ(::send(pair.client.fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  const Status rejected = RecvFrame(pair.server.fd(), &frame);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kCorruption);

  ASSERT_TRUE(SendFrame(pair.client.fd(), 8, {1, 2, 3}).ok());
  ASSERT_TRUE(RecvFrame(pair.server.fd(), &frame).ok());
  EXPECT_EQ(frame.kind, 8);
  EXPECT_EQ(frame.payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(FrameTransportTest, WaitReadableReportsDataAndTimeout) {
  TcpPair pair = MakeTcpPair();
  StatusOr<bool> idle = WaitReadable(pair.server.fd(), 50);
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle.value());
  ASSERT_TRUE(SendFrame(pair.client.fd(), 1, {42}).ok());
  StatusOr<bool> ready = WaitReadable(pair.server.fd(), 1000);
  ASSERT_TRUE(ready.ok());
  EXPECT_TRUE(ready.value());
  // EOF also counts as readable: a blocked server must wake up to learn
  // the peer is gone.
  Frame frame;
  ASSERT_TRUE(RecvFrame(pair.server.fd(), &frame).ok());
  pair.client.Close();
  StatusOr<bool> eof = WaitReadable(pair.server.fd(), 1000);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof.value());
}

TEST(FrameTransportTest, RecvTimesOutWhenPeerIsSilent) {
  TcpPair pair = MakeTcpPair();
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  const Status s = RecvFrame(pair.server.fd(), &frame, /*timeout_ms=*/100);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, 5.0);
}

TEST(FrameTransportTest, AcceptTimesOutWithNoClient) {
  StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const StatusOr<Socket> accepted = listener.value().Accept(/*timeout_ms=*/100);
  ASSERT_FALSE(accepted.ok());
  EXPECT_NE(accepted.status().message().find("timed out"), std::string::npos);
}

TEST(FrameTransportTest, ConnectToDeadEndpointFailsBounded) {
  // A port nobody listens on: bind an ephemeral port, note it, release it.
  int dead_port = 0;
  {
    StatusOr<TcpListener> listener = TcpListener::Bind("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener.value().port();
  }
  const auto start = std::chrono::steady_clock::now();
  const StatusOr<Socket> socket =
      DialTcp("127.0.0.1:" + std::to_string(dead_port), /*timeout_ms=*/500);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(socket.ok());
  EXPECT_LT(elapsed, 5.0);
}

TEST(FrameTransportTest, ConnectTimeoutIsBounded) {
  // Provoke a half-open connect deterministically: a listener with
  // backlog 1 that never accepts. Once its accept queue is full the
  // kernel drops further SYNs, so the dial blocks — and must come back
  // within the timeout, not hang. Each attempt is also individually
  // bounded, whatever the environment does with the handshake.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd,
                          reinterpret_cast<struct sockaddr*>(&addr), &len),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));

  bool saw_timeout = false;
  std::vector<Socket> held;  // keep queued connections alive
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 16 && !saw_timeout; ++i) {
    StatusOr<Socket> socket = DialTcp(endpoint, /*timeout_ms=*/250);
    if (socket.ok()) {
      held.push_back(std::move(socket).value());
    } else {
      saw_timeout =
          socket.status().message().find("timed out") != std::string::npos;
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ::close(listen_fd);
  // 16 dials at <= 250 ms each: whether they queue or time out, the
  // bounded-connect contract holds iff we get here promptly.
  EXPECT_LT(elapsed, 16 * 0.25 + 5.0);
  if (!saw_timeout) {
    GTEST_SKIP() << "environment completes handshakes past a full backlog "
                    "(all 16 dials connected); timeout path not provokable "
                    "here";
  }
}

TEST(FrameTransportTest, GatherSendMatchesSingleBufferSend) {
  // A frame assembled from spans must be byte-identical on the wire to
  // the same payload sent through SendFrame — the receiver cannot tell
  // which path produced it.
  TcpPair pair = MakeTcpPair();
  const std::vector<uint8_t> a = {1, 2, 3};
  const std::vector<uint8_t> b = {};  // empty parts are legal
  const std::vector<uint8_t> c = {4, 5, 6, 7, 8};
  const ConstSpan parts[3] = {{a.data(), a.size()},
                              {b.data(), b.size()},
                              {c.data(), c.size()}};
  ASSERT_TRUE(SendFrameV(pair.client.fd(), 9, parts, 3).ok());

  std::vector<uint8_t> concat = a;
  concat.insert(concat.end(), c.begin(), c.end());
  ASSERT_TRUE(SendFrame(pair.client.fd(), 9, concat).ok());

  Frame from_spans;
  Frame from_buffer;
  ASSERT_TRUE(RecvFrame(pair.server.fd(), &from_spans).ok());
  ASSERT_TRUE(RecvFrame(pair.server.fd(), &from_buffer).ok());
  EXPECT_EQ(from_spans.kind, from_buffer.kind);
  EXPECT_EQ(from_spans.payload, from_buffer.payload);
}

TEST(FrameTransportTest, GatherSendAllEmptyPartsIsAnEmptyFrame) {
  TcpPair pair = MakeTcpPair();
  const ConstSpan parts[2] = {{nullptr, 0}, {nullptr, 0}};
  ASSERT_TRUE(SendFrameV(pair.client.fd(), 3, parts, 2).ok());
  Frame frame;
  ASSERT_TRUE(RecvFrame(pair.server.fd(), &frame).ok());
  EXPECT_EQ(frame.kind, 3);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTransportTest, GatherSendRejectsTooManyParts) {
  TcpPair pair = MakeTcpPair();
  const uint8_t byte = 0;
  std::vector<ConstSpan> parts(kMaxSendSpans + 1, ConstSpan{&byte, 1});
  const Status s =
      SendFrameV(pair.client.fd(), 1, parts.data(), parts.size());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTransportTest, GatherSendSurvivesPartialWrites) {
  // Shrink the send buffer so a multi-megabyte gather send cannot
  // complete in one sendmsg call; the sender must resume mid-iovec
  // (adjusting base/len of the partially-written part) while a slow
  // reader drains. This is the partial-write path the RPC reply relies
  // on for large plan sets.
  TcpPair pair = MakeTcpPair();
  const int small = 8 * 1024;
  ASSERT_EQ(::setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof(small)),
            0);

  std::vector<uint8_t> head(8);
  for (size_t i = 0; i < head.size(); ++i) head[i] = static_cast<uint8_t>(i);
  std::vector<uint8_t> body(3 << 20);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  const ConstSpan parts[2] = {{head.data(), head.size()},
                              {body.data(), body.size()}};

  Frame frame;
  Status recv_status = Status::OK();
  std::thread reader([&] {
    // Trickle-read so the writer repeatedly fills the tiny buffer.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    recv_status = RecvFrame(pair.server.fd(), &frame, /*timeout_ms=*/20000);
  });
  const Status sent = SendFrameV(pair.client.fd(), 11, parts, 2);
  reader.join();
  ASSERT_TRUE(sent.ok()) << sent.ToString();
  ASSERT_TRUE(recv_status.ok()) << recv_status.ToString();
  EXPECT_EQ(frame.kind, 11);
  ASSERT_EQ(frame.payload.size(), head.size() + body.size());
  EXPECT_EQ(std::memcmp(frame.payload.data(), head.data(), head.size()), 0);
  EXPECT_EQ(std::memcmp(frame.payload.data() + head.size(), body.data(),
                        body.size()),
            0);
}

TEST(FrameTransportTest, RecvFrameSplitSeparatesHeaderFromBody) {
  TcpPair pair = MakeTcpPair();
  const std::vector<uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3};
  ASSERT_TRUE(SendFrame(pair.client.fd(), 21, payload).ok());
  uint8_t kind = 0;
  uint8_t header[4];
  std::vector<uint8_t> body;
  ASSERT_TRUE(
      RecvFrameSplit(pair.server.fd(), &kind, header, sizeof(header), &body)
          .ok());
  EXPECT_EQ(kind, 21);
  EXPECT_EQ(std::memcmp(header, payload.data(), sizeof(header)), 0);
  EXPECT_EQ(body, (std::vector<uint8_t>{1, 2, 3}));

  // The body buffer is reused across frames: same capacity, new contents.
  body.reserve(1024);
  const uint8_t* data_before = body.data();
  const size_t cap_before = body.capacity();
  ASSERT_TRUE(SendFrame(pair.client.fd(), 22, {9, 9, 9, 9, 5}).ok());
  ASSERT_TRUE(
      RecvFrameSplit(pair.server.fd(), &kind, header, sizeof(header), &body)
          .ok());
  EXPECT_EQ(kind, 22);
  EXPECT_EQ(body, (std::vector<uint8_t>{5}));
  EXPECT_EQ(body.data(), data_before);
  EXPECT_EQ(body.capacity(), cap_before);
}

TEST(FrameTransportTest, RecvFrameSplitRejectsFrameShorterThanHeader) {
  TcpPair pair = MakeTcpPair();
  ASSERT_TRUE(SendFrame(pair.client.fd(), 1, {1, 2}).ok());
  uint8_t kind = 0;
  uint8_t header[8];
  std::vector<uint8_t> body;
  const Status s =
      RecvFrameSplit(pair.server.fd(), &kind, header, sizeof(header), &body);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(FrameTransportTest, ParseHostPort) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(ParseHostPort("127.0.0.1:7001", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7001);
  EXPECT_FALSE(ParseHostPort("127.0.0.1", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort(":7001", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("127.0.0.1:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("127.0.0.1:notaport", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("127.0.0.1:99999", &host, &port).ok());
}

TEST(FrameTransportTest, DialRejectsMalformedEndpoints) {
  EXPECT_FALSE(DialTcp("nonsense", 100).ok());
  EXPECT_FALSE(DialTcp("not.an.ip.addr:80", 100).ok());
}

}  // namespace
}  // namespace mpqopt
