// Copyright 2026 mpqopt authors.

#include "exp/harness.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mpqopt {
namespace {

TEST(HarnessTest, EnvIntFallback) {
  ::unsetenv("MPQOPT_TEST_KNOB");
  EXPECT_EQ(EnvInt("MPQOPT_TEST_KNOB", 42), 42);
}

TEST(HarnessTest, EnvIntParses) {
  ::setenv("MPQOPT_TEST_KNOB", "123", 1);
  EXPECT_EQ(EnvInt("MPQOPT_TEST_KNOB", 42), 123);
  ::setenv("MPQOPT_TEST_KNOB", "-7", 1);
  EXPECT_EQ(EnvInt("MPQOPT_TEST_KNOB", 42), -7);
  ::unsetenv("MPQOPT_TEST_KNOB");
}

TEST(HarnessTest, EnvIntGarbageFallsBack) {
  ::setenv("MPQOPT_TEST_KNOB", "abc", 1);
  EXPECT_EQ(EnvInt("MPQOPT_TEST_KNOB", 42), 42);
  ::unsetenv("MPQOPT_TEST_KNOB");
}

TEST(HarnessTest, EnvDoubleParses) {
  ::setenv("MPQOPT_TEST_KNOB", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("MPQOPT_TEST_KNOB", 1.0), 2.5);
  ::unsetenv("MPQOPT_TEST_KNOB");
  EXPECT_DOUBLE_EQ(EnvDouble("MPQOPT_TEST_KNOB", 1.0), 1.0);
}

TEST(HarnessTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7);
  EXPECT_DOUBLE_EQ(Median({}), 0);
}

TEST(HarnessTest, MedianRobustToOutlier) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4, 1000}), 3);
}

TEST(HarnessTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2);
  EXPECT_DOUBLE_EQ(Mean({}), 0);
}

TEST(HarnessTest, ConfidenceInterval) {
  EXPECT_DOUBLE_EQ(ConfidenceInterval95({5}), 0);
  const double ci = ConfidenceInterval95({10, 12, 8, 11, 9});
  EXPECT_GT(ci, 0);
  EXPECT_LT(ci, 3);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "workers"});
  t.AddRow({"1", "2"});
  t.AddRow({"100", "30000"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("a    workers"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("100  30000"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::FormatMillis(1.5), "1500.00");
  EXPECT_EQ(TablePrinter::FormatBytes(1234), "1234");
  EXPECT_EQ(TablePrinter::FormatCount(99.7), "100");
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
}

TEST(TablePrinterTest, ShortRowsTolerated) {
  TablePrinter t({"x", "y", "z"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find('1'), std::string::npos);
}

}  // namespace
}  // namespace mpqopt
