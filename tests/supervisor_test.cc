// Copyright 2026 mpqopt authors.
//
// Direct unit tests of the supervision arithmetic — no sockets, no
// worker subprocesses. The socket integration suite
// (tests/rpc_failover_test.cc) exercises the same logic end to end; this
// binary pins the pure functions down exactly: the capped exponential
// redial backoff (immediate first retry, doubling, cap, no overflow) and
// the recovery pass budget that bounds round/session retry loops.

#include "cluster/supervisor/worker_supervisor.h"

#include <gtest/gtest.h>

namespace mpqopt {
namespace {

TEST(BackoffDelayTest, FirstRetryOfAnEpisodeIsImmediate) {
  SupervisorOptions options;
  options.backoff_initial_ms = 50;
  options.backoff_max_ms = 2000;
  // A worker that just restarted accepts at once: the first redial after
  // a failure must not wait.
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 0), 0);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, -3), 0);
}

TEST(BackoffDelayTest, DoublesFromInitialUpToTheCap) {
  SupervisorOptions options;
  options.backoff_initial_ms = 50;
  options.backoff_max_ms = 300;
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 1), 50);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 2), 100);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 3), 200);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 4), 300);  // capped
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 5), 300);
}

TEST(BackoffDelayTest, ManyFailuresCannotOverflowTheDelay) {
  SupervisorOptions options;
  options.backoff_initial_ms = 1000;
  options.backoff_max_ms = 60000;
  // 2^60 milliseconds would wrap a 32-bit int many times over; the
  // doubling must saturate at the cap instead.
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 60), 60000);
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 1000), 60000);
}

TEST(BackoffDelayTest, DegenerateKnobsAreClamped) {
  SupervisorOptions options;
  options.backoff_initial_ms = 0;
  options.backoff_max_ms = 300;
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 3), 0);
  options.backoff_initial_ms = -10;  // negative = "no backoff", not UB
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 2), 0);
  options.backoff_initial_ms = 500;
  options.backoff_max_ms = 100;  // cap below initial: initial wins
  EXPECT_EQ(WorkerSupervisor::BackoffDelayMs(options, 1), 500);
}

TEST(RecoveryPassBudgetTest, BudgetScalesWithRedialsAndPoolSize) {
  // (max_redials + 1) dials per worker, plus two passes of slack: the
  // initial scatter and a final all-healthy retry.
  EXPECT_EQ(RecoveryPassBudget(2, 4), 2u + 3u * 4u);
  EXPECT_EQ(RecoveryPassBudget(0, 4), 2u + 1u * 4u);
  EXPECT_EQ(RecoveryPassBudget(1, 1), 2u + 2u * 1u);
}

TEST(RecoveryPassBudgetTest, NegativeRedialsActLikeZero) {
  EXPECT_EQ(RecoveryPassBudget(-5, 3), RecoveryPassBudget(0, 3));
}

TEST(RecoveryPassBudgetTest, MatchesTheDocumentedRoundBound) {
  // The bound RpcBackend::RunRound and RpcSessionHandle both enforce:
  // a flapping worker can burn at most its redial budget per episode,
  // so passes are finite even when every pass kills a worker.
  for (int redials : {0, 1, 2, 8}) {
    for (size_t workers : {size_t{1}, size_t{4}, size_t{16}}) {
      const size_t budget = RecoveryPassBudget(redials, workers);
      EXPECT_GE(budget, 2u + workers);
      EXPECT_EQ(budget,
                2 + (static_cast<size_t>(redials > 0 ? redials : 0) + 1) *
                        workers);
    }
  }
}

}  // namespace
}  // namespace mpqopt
