// Copyright 2026 mpqopt authors.

#include "partition/partition_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/math_util.h"

namespace mpqopt {
namespace {

ConstraintSet Constraints(int n, PlanSpace space, uint64_t part, uint64_t m) {
  StatusOr<ConstraintSet> c = ConstraintSet::FromPartitionId(n, space, part, m);
  MPQOPT_CHECK(c.ok());
  return std::move(c).value();
}

TEST(PartitionIndexTest, UnconstrainedSizeIsPowerSet) {
  for (int n : {1, 2, 3, 5, 8, 10}) {
    const PartitionIndex idx(n, ConstraintSet::None(PlanSpace::kLinear));
    EXPECT_EQ(idx.size(), int64_t{1} << n) << n;
  }
}

TEST(PartitionIndexTest, UnconstrainedBushySizeIsPowerSet) {
  for (int n : {3, 6, 7, 9, 11}) {
    const PartitionIndex idx(n, ConstraintSet::None(PlanSpace::kBushy));
    EXPECT_EQ(idx.size(), int64_t{1} << n) << n;
  }
}

TEST(PartitionIndexTest, LinearConstraintReducesByThreeQuarters) {
  // Theorem 2: each constraint cuts admissible sets to 3/4.
  for (int l = 0; l <= 4; ++l) {
    const int n = 8;
    const PartitionIndex idx(n,
                             Constraints(n, PlanSpace::kLinear, 0, 1u << l));
    const double expected = std::pow(2.0, n) * std::pow(0.75, l);
    EXPECT_DOUBLE_EQ(static_cast<double>(idx.size()), expected) << l;
  }
}

TEST(PartitionIndexTest, BushyConstraintReducesBySevenEighths) {
  // Theorem 3: each constraint cuts admissible sets to 7/8.
  for (int l = 0; l <= 3; ++l) {
    const int n = 9;
    const PartitionIndex idx(n, Constraints(n, PlanSpace::kBushy, 0, 1u << l));
    const double expected = std::pow(2.0, n) * std::pow(7.0 / 8.0, l);
    EXPECT_DOUBLE_EQ(static_cast<double>(idx.size()), expected) << l;
  }
}

TEST(PartitionIndexTest, RankIsDenseBijection) {
  const int n = 8;
  const PartitionIndex idx(n, Constraints(n, PlanSpace::kLinear, 5, 16));
  std::set<int64_t> ranks;
  int64_t admissible = 0;
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    const int64_t rank = idx.Rank(TableSet(bits));
    if (rank >= 0) {
      ++admissible;
      EXPECT_LT(rank, idx.size());
      EXPECT_TRUE(ranks.insert(rank).second) << "duplicate rank " << rank;
    }
  }
  EXPECT_EQ(admissible, idx.size());
  EXPECT_EQ(static_cast<int64_t>(ranks.size()), idx.size());
}

TEST(PartitionIndexTest, RankAgreesWithConstraintAdmits) {
  const int n = 9;
  for (PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    const uint64_t m = MaxWorkers(n, space);
    const ConstraintSet constraints = Constraints(n, space, m - 1, m);
    const PartitionIndex idx(n, constraints);
    for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
      const TableSet s(bits);
      // The ConstraintSet treats singletons as always admissible; the
      // index keeps the product structure, so compare only |s| != 1.
      if (s.Count() == 1) continue;
      EXPECT_EQ(idx.Rank(s) >= 0, constraints.Admits(s)) << s.ToString();
    }
  }
}

TEST(PartitionIndexTest, EmptySetHasRankZero) {
  const PartitionIndex idx(6, Constraints(6, PlanSpace::kLinear, 1, 4));
  EXPECT_EQ(idx.Rank(TableSet::Empty()), 0);
}

TEST(PartitionIndexTest, CountSetsOfCardMatchesEnumeration) {
  const int n = 10;
  const PartitionIndex idx(n, Constraints(n, PlanSpace::kLinear, 3, 8));
  int64_t total = 0;
  for (int k = 0; k <= n; ++k) {
    int64_t count = 0;
    idx.ForEachSetOfCard(k, [&](TableSet s, int64_t rank) {
      EXPECT_EQ(s.Count(), k);
      EXPECT_EQ(idx.Rank(s), rank);
      ++count;
    });
    EXPECT_EQ(count, idx.CountSetsOfCard(k)) << k;
    total += count;
  }
  EXPECT_EQ(total, idx.size());
}

TEST(PartitionIndexTest, ForEachSetVisitsEverySetOnce) {
  const int n = 8;
  const PartitionIndex idx(n, Constraints(n, PlanSpace::kBushy, 1, 2));
  std::set<uint64_t> seen;
  idx.ForEachSet([&](TableSet s, int64_t rank) {
    EXPECT_EQ(idx.Rank(s), rank);
    EXPECT_TRUE(seen.insert(s.bits()).second);
  });
  EXPECT_EQ(static_cast<int64_t>(seen.size()), idx.size());
}

TEST(PartitionIndexTest, RankWithoutMatchesRank) {
  const int n = 8;
  const PartitionIndex idx(n, Constraints(n, PlanSpace::kLinear, 9, 16));
  idx.ForEachSet([&](TableSet u, int64_t rank) {
    if (u.Count() < 2) return;
    for (int t : u) {
      if (!idx.InnerAllowed(t, u)) continue;
      EXPECT_EQ(idx.RankWithout(u, rank, t), idx.Rank(u.Without(t)))
          << u.ToString() << " minus " << t;
    }
  });
}

TEST(PartitionIndexTest, InnerAllowedSemantics) {
  // Constraint set for partition 0 of 2: Q0 before Q1.
  const PartitionIndex idx(4, Constraints(4, PlanSpace::kLinear, 0, 2));
  const TableSet both = TableSet::Single(0).With(1).With(2);
  EXPECT_FALSE(idx.InnerAllowed(0, both));  // 1 present, 0 must precede
  EXPECT_TRUE(idx.InnerAllowed(1, both));
  EXPECT_TRUE(idx.InnerAllowed(2, both));
  const TableSet no_successor = TableSet::Single(0).With(2);
  EXPECT_TRUE(idx.InnerAllowed(0, no_successor));
}

TEST(PartitionIndexTest, EveryAdmissibleSetHasAdmissibleInner) {
  const int n = 8;
  for (uint64_t part = 0; part < 16; ++part) {
    const PartitionIndex idx(n, Constraints(n, PlanSpace::kLinear, part, 16));
    idx.ForEachSet([&](TableSet u, int64_t) {
      if (u.Count() < 2) return;
      bool any = false;
      for (int t : u) {
        if (idx.InnerAllowed(t, u)) {
          // The left remainder must be admissible too.
          EXPECT_GE(idx.Rank(u.Without(t)), 0);
          any = true;
        }
      }
      EXPECT_TRUE(any) << u.ToString();
    });
  }
}

TEST(PartitionIndexTest, SplitsOnlyAdmissibleAndComplete) {
  const int n = 9;
  for (uint64_t part : {0ull, 3ull, 7ull}) {
    const PartitionIndex idx(n, Constraints(n, PlanSpace::kBushy, part, 8));
    idx.ForEachSet([&](TableSet u, int64_t) {
      if (u.Count() < 2) return;
      std::set<uint64_t> generated;
      idx.ForEachSplit(u, [&](TableSet left, int64_t lrank, int64_t rrank) {
        EXPECT_FALSE(left.IsEmpty());
        EXPECT_NE(left, u);
        EXPECT_TRUE(left.IsSubsetOf(u));
        EXPECT_EQ(lrank, idx.Rank(left));
        EXPECT_EQ(rrank, idx.Rank(u.Minus(left)));
        EXPECT_GE(lrank, 0);
        EXPECT_GE(rrank, 0);
        EXPECT_TRUE(generated.insert(left.bits()).second);
      });
      // Completeness: every subset with both sides admissible is generated.
      SubsetEnumerator subsets(u);
      int64_t expected = 0;
      while (subsets.Next()) {
        const TableSet l = subsets.current();
        if (idx.Contains(l) && idx.Contains(u.Minus(l))) ++expected;
      }
      EXPECT_EQ(static_cast<int64_t>(generated.size()), expected)
          << u.ToString();
    });
  }
}

TEST(PartitionIndexTest, BushySplitCountMatchesTheorem7) {
  // Per constrained triple, the ratio of admissible to possible operand
  // pairs is 21/27 (Theorem 7). With n = 3l tables all in constrained
  // triples, total splits (including the two trivial ones per set, which
  // the theorem's counting also includes via the "absent" state) obey:
  // sum over sets of (splits + 2) = 27^(n/3) * (21/27)^l.
  for (const int l : {0, 1, 2, 3}) {
    const int n = 9;
    const PartitionIndex idx(n, Constraints(n, PlanSpace::kBushy, 0, 1u << l));
    int64_t total_pairs = 0;  // ordered (left, right) incl. trivial
    idx.ForEachSet([&](TableSet u, int64_t) {
      if (u.Count() < 2) return;
      int64_t count = 2;  // the two trivial splits are not emitted
      idx.ForEachSplit(u, [&](TableSet, int64_t, int64_t) { ++count; });
      total_pairs += count;
    });
    // Add the pairs for |u| < 2 that the closed formula counts: the empty
    // set and singletons each contribute their own (trivial) splits.
    // Instead of reverse-engineering those, compare against brute force.
    int64_t brute = 0;
    for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
      const TableSet u(bits);
      if (u.Count() < 2 || !idx.Contains(u)) continue;
      SubsetEnumerator subsets(u);
      brute += 2;
      while (subsets.Next()) {
        if (idx.Contains(subsets.current()) &&
            idx.Contains(u.Minus(subsets.current()))) {
          ++brute;
        }
      }
    }
    EXPECT_EQ(total_pairs, brute) << "l=" << l;
    if (l > 0) {
      // Reduction factor per constraint approximately 21/27 relative to
      // the unconstrained total (exact for sets fully inside triples).
      const PartitionIndex base(n, ConstraintSet::None(PlanSpace::kBushy));
      EXPECT_LT(idx.CountAdmissibleSplits(), base.CountAdmissibleSplits());
    }
  }
}

TEST(PartitionIndexTest, CountAdmissibleSplitsExactFactor) {
  // For n divisible by 3 and all triples constrained, the total number of
  // (left, right, absent) assignments over admissible sets is exactly
  // 27^(n/3) * (21/27)^l counting trivial splits; subtracting the two
  // trivial splits per admissible set of any cardinality gives
  // CountAdmissibleSplits() + corrections for |u| < 2. We verify the
  // exact closed form on the full assignment count.
  const int n = 9;
  for (int l = 0; l <= 3; ++l) {
    const PartitionIndex idx(n, Constraints(n, PlanSpace::kBushy, 0, 1u << l));
    int64_t assignments = 0;  // splits incl. trivial, over ALL admissible u
    idx.ForEachSet([&](TableSet u, int64_t) {
      if (u.Count() >= 2) {
        assignments += 2;
        idx.ForEachSplit(u, [&](TableSet, int64_t, int64_t) { ++assignments; });
      } else {
        // |u| in {0, 1}: only the trivial assignments exist; count the
        // subset pairs (l, u\l): empty set has 1, singleton has 2.
        assignments += u.IsEmpty() ? 1 : 2;
      }
    });
    const double expected = std::pow(27.0, 3) * std::pow(21.0 / 27.0, l);
    EXPECT_DOUBLE_EQ(static_cast<double>(assignments), expected) << l;
  }
}

/// Skew-freeness: all partitions of one decomposition have identical
/// admissible-set counts and identical per-cardinality histograms.
class SkewTest
    : public ::testing::TestWithParam<std::tuple<int, int, PlanSpace>> {};

TEST_P(SkewTest, AllPartitionsSameSize) {
  const auto [n, m, space] = GetParam();
  std::vector<int64_t> sizes;
  std::vector<std::vector<int64_t>> histograms;
  for (int part = 0; part < m; ++part) {
    const PartitionIndex idx(n, Constraints(n, space, part, m));
    sizes.push_back(idx.size());
    std::vector<int64_t> hist;
    for (int k = 0; k <= n; ++k) hist.push_back(idx.CountSetsOfCard(k));
    histograms.push_back(std::move(hist));
  }
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[0]);
    EXPECT_EQ(histograms[i], histograms[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, SkewTest,
    ::testing::Values(std::make_tuple(8, 16, PlanSpace::kLinear),
                      std::make_tuple(10, 8, PlanSpace::kLinear),
                      std::make_tuple(13, 32, PlanSpace::kLinear),
                      std::make_tuple(9, 8, PlanSpace::kBushy),
                      std::make_tuple(12, 16, PlanSpace::kBushy),
                      std::make_tuple(14, 8, PlanSpace::kBushy)));

/// Partition disjointness-and-coverage at the admissible-set level: every
/// non-singleton set is admissible in exactly
/// m * product over constrained groups of (its per-group share).
class UnionCoverageTest
    : public ::testing::TestWithParam<std::tuple<int, int, PlanSpace>> {};

TEST_P(UnionCoverageTest, UnionOfPartitionsIsPowerSet) {
  const auto [n, m, space] = GetParam();
  std::vector<PartitionIndex> indexes;
  indexes.reserve(m);
  for (int part = 0; part < m; ++part) {
    indexes.emplace_back(n, Constraints(n, space, part, m));
  }
  for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
    const TableSet s(bits);
    bool anywhere = false;
    for (const PartitionIndex& idx : indexes) {
      if (idx.Contains(s)) {
        anywhere = true;
        break;
      }
    }
    if (s.Count() == 1) continue;  // singletons handled separately
    EXPECT_TRUE(anywhere) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, UnionCoverageTest,
    ::testing::Values(std::make_tuple(8, 16, PlanSpace::kLinear),
                      std::make_tuple(9, 4, PlanSpace::kLinear),
                      std::make_tuple(9, 8, PlanSpace::kBushy),
                      std::make_tuple(11, 8, PlanSpace::kBushy)));

TEST(PartitionIndexTest, LeftoverTablesUnconstrained) {
  // n = 7 linear: three pairs + one leftover table (6).
  const PartitionIndex idx(7, Constraints(7, PlanSpace::kLinear, 0, 8));
  EXPECT_EQ(idx.size(), 27 * 2);  // 3^3 pair digits * 2 leftover states
  EXPECT_TRUE(idx.Contains(TableSet::Single(6)));
  EXPECT_TRUE(idx.Contains(TableSet::AllTables(7)));
}

TEST(PartitionIndexTest, SingleTableQuery) {
  const PartitionIndex idx(1, ConstraintSet::None(PlanSpace::kLinear));
  EXPECT_EQ(idx.size(), 2);  // {} and {0}
  EXPECT_TRUE(idx.Contains(TableSet::Single(0)));
}

}  // namespace
}  // namespace mpqopt
