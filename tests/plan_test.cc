// Copyright 2026 mpqopt authors.

#include "plan/plan.h"

#include <gtest/gtest.h>

namespace mpqopt {
namespace {

/// Builds HJ(BNL(R0, R1), R2) — a left-deep 3-table plan.
PlanId BuildLeftDeep(PlanArena* arena) {
  const PlanId s0 = arena->MakeScan(0, 100, CostVector::Scalar(100));
  const PlanId s1 = arena->MakeScan(1, 200, CostVector::Scalar(200));
  const PlanId s2 = arena->MakeScan(2, 300, CostVector::Scalar(300));
  const PlanId j01 = arena->MakeJoin(JoinAlgorithm::kBlockNestedLoop, s0, s1,
                                     50, CostVector::Scalar(1000));
  return arena->MakeJoin(JoinAlgorithm::kHashJoin, j01, s2, 10,
                         CostVector::Scalar(2000));
}

/// Builds HJ(BNL(R0, R1), SMJ(R2, R3)) — bushy.
PlanId BuildBushy(PlanArena* arena) {
  const PlanId s0 = arena->MakeScan(0, 10, CostVector::Scalar(10));
  const PlanId s1 = arena->MakeScan(1, 10, CostVector::Scalar(10));
  const PlanId s2 = arena->MakeScan(2, 10, CostVector::Scalar(10));
  const PlanId s3 = arena->MakeScan(3, 10, CostVector::Scalar(10));
  const PlanId l = arena->MakeJoin(JoinAlgorithm::kBlockNestedLoop, s0, s1,
                                   5, CostVector::Scalar(100));
  const PlanId r = arena->MakeJoin(JoinAlgorithm::kSortMergeJoin, s2, s3, 5,
                                   CostVector::Scalar(100));
  return arena->MakeJoin(JoinAlgorithm::kHashJoin, l, r, 2,
                         CostVector::Scalar(500));
}

TEST(PlanArenaTest, ScanNodeFields) {
  PlanArena arena;
  const PlanId id = arena.MakeScan(3, 500, CostVector::Scalar(500));
  const PlanNode& node = arena.node(id);
  EXPECT_TRUE(node.IsScan());
  EXPECT_EQ(node.table, 3);
  EXPECT_EQ(node.tables, TableSet::Single(3));
  EXPECT_DOUBLE_EQ(node.cardinality, 500);
  EXPECT_EQ(node.left, kInvalidPlanId);
  EXPECT_EQ(node.right, kInvalidPlanId);
}

TEST(PlanArenaTest, JoinNodeUnionsTables) {
  PlanArena arena;
  const PlanId root = BuildLeftDeep(&arena);
  EXPECT_EQ(arena.node(root).tables, TableSet::AllTables(3));
  EXPECT_FALSE(arena.node(root).IsScan());
}

TEST(PlanArenaTest, SizeCountsNodes) {
  PlanArena arena;
  BuildLeftDeep(&arena);
  EXPECT_EQ(arena.size(), 5u);  // 3 scans + 2 joins
  EXPECT_GT(arena.MemoryBytes(), 0u);
  arena.Clear();
  EXPECT_EQ(arena.size(), 0u);
}

TEST(PlanShapeTest, LeftDeepDetection) {
  PlanArena arena;
  const PlanId ld = BuildLeftDeep(&arena);
  EXPECT_TRUE(IsLeftDeep(arena, ld));
  const PlanId bushy = BuildBushy(&arena);
  EXPECT_FALSE(IsLeftDeep(arena, bushy));
}

TEST(PlanShapeTest, ScanIsLeftDeep) {
  PlanArena arena;
  const PlanId s = arena.MakeScan(0, 1, CostVector::Scalar(1));
  EXPECT_TRUE(IsLeftDeep(arena, s));
}

TEST(PlanShapeTest, JoinOrderOfLeftDeepPlan) {
  PlanArena arena;
  const PlanId root = BuildLeftDeep(&arena);
  EXPECT_EQ(LeftDeepJoinOrder(arena, root), (std::vector<int>{0, 1, 2}));
}

TEST(PlanShapeTest, JoinOrderOfSingleScan) {
  PlanArena arena;
  const PlanId s = arena.MakeScan(7, 1, CostVector::Scalar(1));
  EXPECT_EQ(LeftDeepJoinOrder(arena, s), (std::vector<int>{7}));
}

TEST(PlanPrintTest, RendersOperatorsAndTables) {
  PlanArena arena;
  const PlanId root = BuildLeftDeep(&arena);
  EXPECT_EQ(PlanToString(arena, root), "HJ(BNL(R0, R1), R2)");
}

TEST(PlanPrintTest, RendersBushyShape) {
  PlanArena arena;
  const PlanId root = BuildBushy(&arena);
  EXPECT_EQ(PlanToString(arena, root), "HJ(BNL(R0, R1), SMJ(R2, R3))");
}

TEST(PlanCountTest, CountJoins) {
  PlanArena arena;
  EXPECT_EQ(CountJoins(arena, BuildLeftDeep(&arena)), 2);
  EXPECT_EQ(CountJoins(arena, BuildBushy(&arena)), 3);
  EXPECT_EQ(CountJoins(arena, arena.MakeScan(0, 1, CostVector::Scalar(1))),
            0);
}

}  // namespace
}  // namespace mpqopt
