// Copyright 2026 mpqopt authors.

#include "catalog/query.h"

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace mpqopt {
namespace {

Query MakeValidQuery() {
  std::vector<TableInfo> tables(3);
  for (int i = 0; i < 3; ++i) {
    tables[i].cardinality = 100.0 * (i + 1);
    tables[i].attribute_domains = {10.0, 20.0};
    tables[i].name = "R" + std::to_string(i);
  }
  std::vector<JoinPredicate> preds;
  preds.push_back({0, 0, 1, 1, 0.05});
  preds.push_back({1, 0, 2, 0, 0.1});
  return Query(std::move(tables), std::move(preds));
}

TEST(QueryTest, ValidQueryValidates) {
  EXPECT_TRUE(MakeValidQuery().Validate().ok());
}

TEST(QueryTest, EmptyQueryRejected) {
  Query q;
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, NonPositiveCardinalityRejected) {
  std::vector<TableInfo> tables(1);
  tables[0].cardinality = 0;
  Query q(std::move(tables), {});
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, PredicateTableOutOfRangeRejected) {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = tables[1].cardinality = 10;
  tables[0].attribute_domains = tables[1].attribute_domains = {5.0};
  std::vector<JoinPredicate> preds = {{0, 0, 7, 0, 0.5}};
  Query q(std::move(tables), std::move(preds));
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, SelfJoinPredicateRejected) {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = tables[1].cardinality = 10;
  tables[0].attribute_domains = tables[1].attribute_domains = {5.0};
  std::vector<JoinPredicate> preds = {{1, 0, 1, 0, 0.5}};
  Query q(std::move(tables), std::move(preds));
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, SelectivityOutOfRangeRejected) {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = tables[1].cardinality = 10;
  tables[0].attribute_domains = tables[1].attribute_domains = {5.0};
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0, 1.5}};
  Query q(std::move(tables), std::move(preds));
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, AttributeIndexOutOfRangeRejected) {
  std::vector<TableInfo> tables(2);
  tables[0].cardinality = tables[1].cardinality = 10;
  tables[0].attribute_domains = tables[1].attribute_domains = {5.0};
  std::vector<JoinPredicate> preds = {{0, 3, 1, 0, 0.5}};
  Query q(std::move(tables), std::move(preds));
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryTest, SerializationRoundTrips) {
  const Query q = MakeValidQuery();
  ByteWriter w;
  q.Serialize(&w);
  ByteReader r(w.buffer());
  StatusOr<Query> back = Query::Deserialize(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const Query& q2 = back.value();
  ASSERT_EQ(q2.num_tables(), q.num_tables());
  for (int i = 0; i < q.num_tables(); ++i) {
    EXPECT_DOUBLE_EQ(q2.table(i).cardinality, q.table(i).cardinality);
    EXPECT_EQ(q2.table(i).attribute_domains, q.table(i).attribute_domains);
    EXPECT_EQ(q2.table(i).name, q.table(i).name);
  }
  ASSERT_EQ(q2.predicates().size(), q.predicates().size());
  for (size_t i = 0; i < q.predicates().size(); ++i) {
    EXPECT_EQ(q2.predicates()[i].left_table, q.predicates()[i].left_table);
    EXPECT_EQ(q2.predicates()[i].right_table, q.predicates()[i].right_table);
    EXPECT_DOUBLE_EQ(q2.predicates()[i].selectivity,
                     q.predicates()[i].selectivity);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(QueryTest, DeserializeTruncatedIsCorruption) {
  const Query q = MakeValidQuery();
  ByteWriter w;
  q.Serialize(&w);
  std::vector<uint8_t> truncated(w.buffer().begin(),
                                 w.buffer().begin() + w.size() / 2);
  ByteReader r(truncated);
  StatusOr<Query> back = Query::Deserialize(&r);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(QueryTest, DeserializeGarbageIsCorruptionNotCrash) {
  std::vector<uint8_t> garbage(64, 0xAB);
  ByteReader r(garbage);
  StatusOr<Query> back = Query::Deserialize(&r);
  EXPECT_FALSE(back.ok());
}

TEST(QueryTest, AllTablesSet) {
  EXPECT_EQ(MakeValidQuery().all_tables(), TableSet::AllTables(3));
}

TEST(QueryTest, ToStringMentionsTables) {
  const std::string s = MakeValidQuery().ToString();
  EXPECT_NE(s.find("3 tables"), std::string::npos);
  EXPECT_NE(s.find("R0"), std::string::npos);
}

TEST(JoinGraphShapeTest, Names) {
  EXPECT_STREQ(JoinGraphShapeName(JoinGraphShape::kChain), "chain");
  EXPECT_STREQ(JoinGraphShapeName(JoinGraphShape::kStar), "star");
  EXPECT_STREQ(JoinGraphShapeName(JoinGraphShape::kCycle), "cycle");
  EXPECT_STREQ(JoinGraphShapeName(JoinGraphShape::kClique), "clique");
}

}  // namespace
}  // namespace mpqopt
