// Copyright 2026 mpqopt authors.

#include "cost/cost_vector.h"

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace mpqopt {
namespace {

TEST(CostVectorTest, ScalarConstruction) {
  const CostVector c = CostVector::Scalar(42.5);
  EXPECT_EQ(c.num_metrics(), 1);
  EXPECT_DOUBLE_EQ(c.time(), 42.5);
}

TEST(CostVectorTest, TimeBufferConstruction) {
  const CostVector c = CostVector::TimeBuffer(10, 20);
  EXPECT_EQ(c.num_metrics(), 2);
  EXPECT_DOUBLE_EQ(c[0], 10);
  EXPECT_DOUBLE_EQ(c[1], 20);
}

TEST(CostVectorTest, PlusIsComponentWise) {
  const CostVector a = CostVector::TimeBuffer(1, 2);
  const CostVector b = CostVector::TimeBuffer(10, 20);
  const CostVector s = a.Plus(b);
  EXPECT_DOUBLE_EQ(s[0], 11);
  EXPECT_DOUBLE_EQ(s[1], 22);
}

TEST(CostVectorTest, MaxIsComponentWise) {
  const CostVector a = CostVector::TimeBuffer(1, 20);
  const CostVector b = CostVector::TimeBuffer(10, 2);
  const CostVector m = a.Max(b);
  EXPECT_DOUBLE_EQ(m[0], 10);
  EXPECT_DOUBLE_EQ(m[1], 20);
}

TEST(CostVectorTest, WeakDominance) {
  const CostVector a = CostVector::TimeBuffer(1, 2);
  const CostVector b = CostVector::TimeBuffer(1, 3);
  EXPECT_TRUE(a.WeaklyDominates(b));
  EXPECT_FALSE(b.WeaklyDominates(a));
  EXPECT_TRUE(a.WeaklyDominates(a));  // reflexive
}

TEST(CostVectorTest, StrictDominanceRequiresStrictImprovement) {
  const CostVector a = CostVector::TimeBuffer(1, 2);
  EXPECT_FALSE(a.StrictlyDominates(a));
  EXPECT_TRUE(a.StrictlyDominates(CostVector::TimeBuffer(1, 3)));
  EXPECT_FALSE(a.StrictlyDominates(CostVector::TimeBuffer(0.5, 3)));
}

TEST(CostVectorTest, IncomparableVectors) {
  const CostVector a = CostVector::TimeBuffer(1, 10);
  const CostVector b = CostVector::TimeBuffer(10, 1);
  EXPECT_FALSE(a.WeaklyDominates(b));
  EXPECT_FALSE(b.WeaklyDominates(a));
}

TEST(CostVectorTest, AlphaDominanceRelaxesComparison) {
  const CostVector a = CostVector::TimeBuffer(10, 10);
  const CostVector b = CostVector::TimeBuffer(6, 6);
  EXPECT_FALSE(a.WeaklyDominates(b));
  EXPECT_TRUE(a.AlphaDominates(b, 2.0));   // 10 <= 2*6
  EXPECT_FALSE(a.AlphaDominates(b, 1.5));  // 10 > 1.5*6
}

TEST(CostVectorTest, AlphaOneEqualsWeakDominance) {
  const CostVector a = CostVector::TimeBuffer(3, 4);
  const CostVector b = CostVector::TimeBuffer(3, 5);
  EXPECT_EQ(a.AlphaDominates(b, 1.0), a.WeaklyDominates(b));
  EXPECT_EQ(b.AlphaDominates(a, 1.0), b.WeaklyDominates(a));
}

TEST(CostVectorTest, SerializationRoundTrips) {
  const CostVector c = CostVector::TimeBuffer(3.25, 7.5);
  ByteWriter w;
  c.Serialize(&w);
  ByteReader r(w.buffer());
  StatusOr<CostVector> back = CostVector::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_metrics(), 2);
  EXPECT_DOUBLE_EQ(back.value()[0], 3.25);
  EXPECT_DOUBLE_EQ(back.value()[1], 7.5);
}

TEST(CostVectorTest, DeserializeBadArityIsCorruption) {
  ByteWriter w;
  w.WriteU8(99);
  ByteReader r(w.buffer());
  EXPECT_FALSE(CostVector::Deserialize(&r).ok());
}

TEST(CostVectorTest, ToStringContainsValues) {
  const std::string s = CostVector::TimeBuffer(1, 2).ToString();
  EXPECT_NE(s.find("1.0"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

}  // namespace
}  // namespace mpqopt
