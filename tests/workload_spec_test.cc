// Copyright 2026 mpqopt authors.
//
// Tests for the .mbw workload-spec loader (src/workload/): the
// malformed-input matrix (every rejection is a Status, never a crash),
// schedule flattening, and the golden fingerprints of the shipped
// bench/workloads/*.mbw suite — the macro workloads are version-tagged
// like the plan cache, and these goldens pin them byte-stable: if a
// checked-in .mbw (or the fingerprint encoding itself) changes, a
// golden here must be bumped in the same commit, making workload drift
// visible in review instead of silently shifting the BENCH_macro.json
// trajectory.

#include "workload/workload_spec.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

// Directory of the checked-in workload files, baked in by CMake.
#ifndef MPQOPT_WORKLOAD_DIR
#define MPQOPT_WORKLOAD_DIR "bench/workloads"
#endif

namespace mpqopt {
namespace {

// A minimal valid spec used as the base for the malformed variants.
const char* kValidSpec = R"(mbw 1
workload tiny

relation fact 1000000 50000 4000 900
relation dim  50000   50000
relation tag  4000    4000
relation geo  900     900

query q_star2
  tables fact dim tag geo
  edge fact.0 dim.0
  edge fact.1 tag.0
  edge fact.2 geo.0
  workers 4
end

schedule q_star2 3
)";

TEST(WorkloadSpecTest, ValidSpecParses) {
  StatusOr<Workload> loaded = ParseWorkloadSpec(kValidSpec, "tiny.mbw");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Workload& w = loaded.value();
  EXPECT_EQ(w.name, "tiny");
  ASSERT_EQ(w.queries.size(), 1u);
  EXPECT_EQ(w.queries[0].name, "q_star2");
  EXPECT_EQ(w.queries[0].query.num_tables(), 4);
  EXPECT_EQ(w.queries[0].query.predicates().size(), 3u);
  EXPECT_EQ(w.queries[0].variant, WorkloadVariant::kMpq);
  EXPECT_EQ(w.queries[0].options.num_workers, 4u);
  // Default equality selectivity: 1/max(domain_l, domain_r).
  EXPECT_DOUBLE_EQ(w.queries[0].query.predicates()[0].selectivity,
                   1.0 / 50000.0);
}

TEST(WorkloadSpecTest, ArrivalsFlattenAndCap) {
  const Workload w =
      ParseWorkloadSpec(kValidSpec, "tiny.mbw").value();
  const std::vector<int> all = w.Arrivals();
  ASSERT_EQ(all.size(), 3u);
  for (int index : all) EXPECT_EQ(index, 0);
  EXPECT_EQ(w.Arrivals(/*repeat_cap=*/2).size(), 2u);
  EXPECT_EQ(w.Arrivals(/*repeat_cap=*/100).size(), 3u);
}

TEST(WorkloadSpecTest, MissingScheduleDefaultsToEachQueryOnce) {
  std::string spec(kValidSpec);
  spec = spec.substr(0, spec.find("schedule"));
  StatusOr<Workload> loaded = ParseWorkloadSpec(spec, "tiny.mbw");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Arrivals().size(), 1u);
}

/// Applies `from`->`to` on the valid spec and asserts the parse fails
/// with InvalidArgument carrying file:line provenance and mentioning
/// `want_substring`.
void ExpectRejected(const std::string& from, const std::string& to,
                    const std::string& want_substring) {
  std::string spec(kValidSpec);
  const size_t pos = spec.find(from);
  ASSERT_NE(pos, std::string::npos) << from;
  spec.replace(pos, from.size(), to);
  StatusOr<Workload> loaded = ParseWorkloadSpec(spec, "tiny.mbw");
  ASSERT_FALSE(loaded.ok()) << "accepted: " << from << " -> " << to;
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find(want_substring), std::string::npos)
      << "wanted '" << want_substring << "' in: " << message;
  EXPECT_NE(message.find("tiny.mbw"), std::string::npos) << message;
}

TEST(WorkloadSpecTest, VersionHeaderEnforced) {
  ExpectRejected("mbw 1", "mbw 2", "unsupported mbw version");
  ExpectRejected("mbw 1", "workload stray", "mbw");
  ExpectRejected("mbw 1", "mbw one", "mbw");
}

TEST(WorkloadSpecTest, MalformedRelationsRejected) {
  ExpectRejected("relation fact 1000000 50000 4000 900",
                 "relation fact 0 50000 4000 900", "cardinality");
  ExpectRejected("relation fact 1000000 50000 4000 900",
                 "relation fact 1000000 0 4000 900", "domain");
  // A domain larger than the cardinality is impossible.
  ExpectRejected("relation tag  4000    4000",
                 "relation tag  4000    9000", "exceeds its cardinality");
  ExpectRejected("relation dim  50000   50000",
                 "relation fact 50000 50000", "duplicate relation");
  // Missing domain list.
  ExpectRejected("relation tag  4000    4000", "relation tag 4000",
                 "relation");
  // Strict integer parse: no floats, no trailing garbage.
  ExpectRejected("relation tag  4000    4000",
                 "relation tag  4e3    4000", "cardinality");
}

TEST(WorkloadSpecTest, MalformedQueriesRejected) {
  ExpectRejected("tables fact dim tag geo", "tables fact dim ghost geo",
                 "unknown relation");
  ExpectRejected("tables fact dim tag geo", "tables fact dim dim geo",
                 "listed twice");
  ExpectRejected("edge fact.0 dim.0", "edge fact.0 ghost.0",
                 "not in this query's tables");
  ExpectRejected("edge fact.1 tag.0", "edge fact.7 tag.0", "attribute");
  ExpectRejected("edge fact.0 dim.0", "edge fact.0 fact.1", "itself");
  ExpectRejected("edge fact.1 tag.0", "edge fact.1 tag.0 1.5",
                 "selectivity");
  ExpectRejected("edge fact.1 tag.0", "edge fact.1 tag.0 0",
                 "selectivity");
  // 5 is not a power of two — illegal for MPQ partitioning — and 8
  // exceeds MaxWorkers(4, linear) = 4.
  ExpectRejected("workers 4", "workers 5", "power of two");
  ExpectRejected("workers 4", "workers 8", "exceeds the maximal degree");
  ExpectRejected("workers 4", "workers four", "workers");
  ExpectRejected("workers 4", "warp_factor 9", "unknown query directive");
  // Dropping `end` (and everything after, so the block simply never
  // closes) fails at EOF with the query's own line in the message.
  ExpectRejected("end\n\nschedule q_star2 3", "", "missing its end");
}

TEST(WorkloadSpecTest, MalformedScheduleRejected) {
  ExpectRejected("schedule q_star2 3", "schedule q_ghost 3",
                 "unknown query");
  ExpectRejected("schedule q_star2 3", "schedule q_star2 0", "count");
}

TEST(WorkloadSpecTest, TimedScheduleParsesAndFlattens) {
  std::string spec(kValidSpec);
  spec.replace(spec.find("schedule q_star2 3"), 18,
               "schedule q_star2 3 @100+40\nschedule q_star2 2 @50");
  StatusOr<Workload> loaded = ParseWorkloadSpec(spec, "tiny.mbw");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Workload& w = loaded.value();
  EXPECT_TRUE(w.timed());
  ASSERT_EQ(w.schedule.size(), 2u);
  EXPECT_EQ(w.schedule[0].start_ms, 100);
  EXPECT_EQ(w.schedule[0].spacing_ms, 40);
  EXPECT_EQ(w.schedule[1].start_ms, 50);
  EXPECT_EQ(w.schedule[1].spacing_ms, 0);  // @<start> alone: simultaneous

  // Flattening sorts by offset: the @50 pair fires before the @100+40
  // run, and repetitions step by the spacing.
  const std::vector<Workload::TimedArrival> arrivals = w.TimedArrivals();
  ASSERT_EQ(arrivals.size(), 5u);
  const int64_t want_ms[] = {50, 50, 100, 140, 180};
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].at_ms, want_ms[i]) << "arrival " << i;
    EXPECT_EQ(arrivals[i].query_index, 0);
  }
  // The repeat cap applies per entry, exactly like Arrivals().
  EXPECT_EQ(w.TimedArrivals(/*repeat_cap=*/1).size(), 2u);

  // A serial workload is not timed, and its TimedArrivals all land at 0.
  const Workload serial = ParseWorkloadSpec(kValidSpec, "tiny.mbw").value();
  EXPECT_FALSE(serial.timed());
  for (const Workload::TimedArrival& a : serial.TimedArrivals()) {
    EXPECT_EQ(a.at_ms, 0);
  }
}

TEST(WorkloadSpecTest, TimedAndSerialSchedulesCannotMix) {
  ExpectRejected("schedule q_star2 3",
                 "schedule q_star2 3 @0\nschedule q_star2 2",
                 "mixes timed");
  ExpectRejected("schedule q_star2 3",
                 "schedule q_star2 3\nschedule q_star2 2 @10",
                 "mixes timed");
}

TEST(WorkloadSpecTest, MalformedArrivalTimesRejected) {
  ExpectRejected("schedule q_star2 3", "schedule q_star2 3 @",
                 "arrival time");
  ExpectRejected("schedule q_star2 3", "schedule q_star2 3 100",
                 "arrival time");
  ExpectRejected("schedule q_star2 3", "schedule q_star2 3 @-5",
                 "arrival time");
  ExpectRejected("schedule q_star2 3", "schedule q_star2 3 @10+",
                 "arrival time");
  ExpectRejected("schedule q_star2 3", "schedule q_star2 3 @+40",
                 "arrival time");
  ExpectRejected("schedule q_star2 3", "schedule q_star2 3 @10+4x",
                 "arrival time");
}

TEST(WorkloadSpecTest, TimedScheduleMovesFingerprint) {
  // The offsets are part of the workload identity: @0 is not serial,
  // and different offsets/spacings are different workloads.
  const std::string base(kValidSpec);
  const char* variants[] = {
      "schedule q_star2 3 @0",
      "schedule q_star2 3 @100",
      "schedule q_star2 3 @100+40",
  };
  std::vector<std::string> prints;
  prints.push_back(WorkloadFingerprint(
      ParseWorkloadSpec(base, "tiny.mbw").value()));
  for (const char* schedule : variants) {
    std::string spec(base);
    spec.replace(spec.find("schedule q_star2 3"), 18, schedule);
    StatusOr<Workload> loaded = ParseWorkloadSpec(spec, "tiny.mbw");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    prints.push_back(WorkloadFingerprint(loaded.value()));
  }
  for (size_t i = 0; i < prints.size(); ++i) {
    for (size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
    }
  }
}

TEST(WorkloadSpecTest, SmaVariantAllowsAnyWorkerCount) {
  std::string spec(kValidSpec);
  spec.replace(spec.find("workers 4"), 9, "workers 3\n  variant sma");
  StatusOr<Workload> loaded = ParseWorkloadSpec(spec, "tiny.mbw");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().queries[0].variant, WorkloadVariant::kSma);
  EXPECT_EQ(loaded.value().queries[0].options.num_workers, 3u);
}

TEST(WorkloadSpecTest, FingerprintIgnoresProvenanceTracksSemantics) {
  const Workload base = ParseWorkloadSpec(kValidSpec, "tiny.mbw").value();
  const std::string fp = WorkloadFingerprint(base);
  EXPECT_EQ(fp.rfind("mbw1-", 0), 0u) << fp;

  // Identical text under a different source label => same fingerprint
  // (provenance is not part of the identity).
  EXPECT_EQ(fp, WorkloadFingerprint(
                    ParseWorkloadSpec(kValidSpec, "other.mbw").value()));

  // Any semantic change moves it: cardinality, selectivity, options
  // delta, schedule.
  const std::vector<std::pair<std::string, std::string>> edits = {
      {"relation dim  50000   50000", "relation dim 50001 50000"},
      {"edge fact.0 dim.0", "edge fact.0 dim.0 0.5"},
      {"workers 4", "workers 2"},
      {"workers 4", "workers 4\n  objective mo"},
      {"workers 4", "workers 4\n  interesting_orders on"},
      {"schedule q_star2 3", "schedule q_star2 4"},
  };
  for (const auto& edit : edits) {
    std::string spec(kValidSpec);
    spec.replace(spec.find(edit.first), edit.first.size(), edit.second);
    StatusOr<Workload> changed = ParseWorkloadSpec(spec, "tiny.mbw");
    ASSERT_TRUE(changed.ok()) << changed.status().ToString();
    EXPECT_NE(WorkloadFingerprint(changed.value()), fp)
        << "fingerprint blind to: " << edit.second;
  }
}

TEST(WorkloadSpecTest, ShippedWorkloadGoldensAreByteStable) {
  // The shipped suite, pinned. A mismatch means either a .mbw file or
  // the fingerprint encoding changed — both are deliberate,
  // golden-bumping events (see the file comment).
  const struct {
    const char* file;
    const char* fingerprint;
  } goldens[] = {
      {"analytics_mix.mbw", "mbw1-e406a78b6152455ee8b1c686e17d1e6d"},
      {"burst_open_loop.mbw", "mbw1-9c1456ebeb636f6fbe531d0c2c6898d1"},
      {"oltp_repeat.mbw", "mbw1-4b1fd7ef46ba77b6b551391a7be2bd97"},
      {"sma_sessions.mbw", "mbw1-033ff3f5570b20c2a8861572296ec75e"},
  };
  for (const auto& golden : goldens) {
    const std::string path =
        std::string(MPQOPT_WORKLOAD_DIR) + "/" + golden.file;
    StatusOr<Workload> loaded = LoadWorkloadFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(WorkloadFingerprint(loaded.value()), golden.fingerprint)
        << "fingerprint drift for " << golden.file
        << " — if the workload change is deliberate, bump this golden "
           "in the same commit";
  }
}

TEST(WorkloadSpecTest, LoadWorkloadFileMissingPathIsStatus) {
  StatusOr<Workload> missing = LoadWorkloadFile("/nonexistent/nope.mbw");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mpqopt
