// Copyright 2026 mpqopt authors.
//
// Telemetry-plane tests: Prometheus exposition rendering (single header
// per family across fleet samples, cumulative buckets ending le="+Inf",
// name sanitization, label escaping), the kStatsPollTask wire round
// trip, the flight recorder's ring semantics, the stall watchdog, the
// standalone HTTP server's endpoints, and the fleet test the subsystem
// exists for: a scrape of a live rpc farm carries worker-labeled series,
// and /healthz tracks a SIGKILLed worker READY -> DEGRADED -> READY.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/backend.h"
#include "cluster/task_registry.h"
#include "common/serialize.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/telemetry_server.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

// ------------------------------------------------------------ exposition

TEST(MetricsExportTest, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::PrometheusName("service.latency_ms"), "service_latency_ms");
  EXPECT_EQ(obs::PrometheusName("obs.stalls_total"), "obs_stalls_total");
  EXPECT_EQ(obs::PrometheusName("a-b c"), "a_b_c");
  // A leading digit is not a legal exposition name start.
  EXPECT_EQ(obs::PrometheusName("9lives"), "_9lives");
}

TEST(MetricsExportTest, EscapeLabelValue) {
  EXPECT_EQ(obs::EscapeLabelValue("plain:1234"), "plain:1234");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::EscapeLabelValue("two\nlines"), "two\\nlines");
}

TEST(MetricsExportTest, OneHeaderPerFamilyAcrossFleetSamples) {
  obs::RegistrySample master;
  master.counters.emplace_back("service.requests", 3);
  obs::RegistrySample worker;
  worker.counters.emplace_back("service.requests", 7);

  const std::string text = obs::RenderPrometheus(
      {{"", master}, {"127.0.0.1:7001", worker}});
  // One TYPE/HELP header even though two samples carry the family —
  // Prometheus rejects repeated TYPE lines.
  EXPECT_EQ(CountOccurrences(text, "# TYPE service_requests counter"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# HELP service_requests"), 1u);
  EXPECT_NE(text.find("service_requests 3"), std::string::npos);
  EXPECT_NE(text.find("service_requests{worker=\"127.0.0.1:7001\"} 7"),
            std::string::npos);
}

TEST(MetricsExportTest, HistogramRendersCumulativeBucketsEndingInf) {
  obs::HistogramSnapshot snap;
  snap.bounds = {1.0, 2.0};
  snap.counts = {1, 2, 3};  // per-bucket, overflow last
  snap.count = 6;
  snap.sum = 7.5;
  obs::RegistrySample sample;
  sample.histograms.emplace_back("svc.ms", snap);

  const std::string text = obs::RenderPrometheus({{"", sample}});
  EXPECT_NE(text.find("# TYPE svc_ms histogram"), std::string::npos);
  // Buckets are cumulative, and +Inf equals the total count.
  EXPECT_NE(text.find("svc_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("svc_ms_bucket{le=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("svc_ms_bucket{le=\"+Inf\"} 6"), std::string::npos);
  EXPECT_NE(text.find("svc_ms_sum 7.5"), std::string::npos);
  EXPECT_NE(text.find("svc_ms_count 6"), std::string::npos);
}

TEST(MetricsExportTest, SerializeParseRoundTrip) {
  obs::RegistrySample sample;
  sample.counters.emplace_back("c.one", 41);
  sample.counters.emplace_back("c.two", 0);
  sample.gauges.emplace_back("g.depth", -5);
  obs::HistogramSnapshot snap;
  snap.bounds = {0.5, 4.0, 32.0};
  snap.counts = {0, 9, 1, 2};
  snap.count = 12;
  snap.sum = 55.25;
  sample.histograms.emplace_back("h.ms", snap);

  ByteWriter writer;
  obs::SerializeRegistrySample(sample, &writer);
  const std::vector<uint8_t> bytes = writer.Release();

  obs::RegistrySample parsed;
  ASSERT_TRUE(obs::ParseRegistrySample(bytes, &parsed).ok());
  ASSERT_EQ(parsed.counters.size(), 2u);
  EXPECT_EQ(parsed.counters[0].first, "c.one");
  EXPECT_EQ(parsed.counters[0].second, 41u);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_EQ(parsed.gauges[0].second, -5);
  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].first, "h.ms");
  EXPECT_EQ(parsed.histograms[0].second.bounds, snap.bounds);
  EXPECT_EQ(parsed.histograms[0].second.counts, snap.counts);
  EXPECT_EQ(parsed.histograms[0].second.count, 12u);
  EXPECT_DOUBLE_EQ(parsed.histograms[0].second.sum, 55.25);

  // Malformed frames report Corruption instead of crashing the master.
  obs::RegistrySample scratch;
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(obs::ParseRegistrySample(truncated, &scratch).ok());
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0xEE);
  EXPECT_FALSE(obs::ParseRegistrySample(trailing, &scratch).ok());
}

TEST(MetricsExportTest, StatsPollTaskServesTheGlobalRegistry) {
  obs::MetricsRegistry::Global().GetCounter("test.poll_marker")->Add(17);
  StatusOr<std::vector<uint8_t>> response = StatsPollTaskMain({});
  ASSERT_TRUE(response.ok());
  obs::RegistrySample parsed;
  ASSERT_TRUE(obs::ParseRegistrySample(response.value(), &parsed).ok());
  bool found = false;
  for (const auto& counter : parsed.counters) {
    if (counter.first == "test.poll_marker") {
      found = true;
      EXPECT_GE(counter.second, 17u);
    }
  }
  EXPECT_TRUE(found);
  // The request must be empty — the envelope carries no payload.
  EXPECT_FALSE(StatsPollTaskMain({1, 2, 3}).ok());
}

// -------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, RingOverwritesOldestAndKeepsSeqOrder) {
  obs::FlightRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(obs::FlightEventKind::kRoundFinish, "event %d", i);
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // oldest retained first
  }
  EXPECT_STREQ(events.back().detail, "event 9");
  const std::string dump = recorder.DumpText();
  EXPECT_NE(dump.find("10 events recorded"), std::string::npos);
  EXPECT_NE(dump.find("round-finish"), std::string::npos);
}

TEST(FlightRecorderTest, DetailTruncatesInsteadOfOverflowing) {
  obs::FlightRecorder recorder(2);
  const std::string longtext(500, 'x');
  recorder.Record(obs::FlightEventKind::kStall, "%s", longtext.c_str());
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::string(events[0].detail).size(),
            sizeof(events[0].detail));
}

TEST(StallWatchdogTest, FlagsAnOperationPastTheThreshold) {
  obs::StallWatchdog& watchdog = obs::StallWatchdog::Global();
  watchdog.Configure(50);
  const uint64_t flagged_before = watchdog.flagged_total();
  obs::Counter* const stalls =
      obs::MetricsRegistry::Global().GetCounter(obs::kStallsCounter);
  const uint64_t counter_before = stalls->Value();
  {
    obs::StallWatchdog::Guard guard("test.slow_round");
    // Housekeeping ticks every 20 ms; 300 ms in flight is far past the
    // 50 ms threshold even on a loaded CI box.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  EXPECT_GE(watchdog.flagged_total(), flagged_before + 1);
  EXPECT_GE(stalls->Value(), counter_before + 1);
  const std::string dump = obs::FlightRecorder::Global().DumpText();
  EXPECT_NE(dump.find("test.slow_round"), std::string::npos);
  // Disable again so later tests' rounds are not flagged.
  watchdog.Configure(0);
}

// ------------------------------------------------------------ http server

TEST(TelemetryServerTest, StandaloneEndpointsServeOverRealSockets) {
  obs::MetricsRegistry::Global()
      .GetHistogram(obs::kServiceLatencyHistogram,
                    obs::Histogram::LatencyBoundariesMs())
      ->Record(1.25);
  StatusOr<std::unique_ptr<obs::TelemetryServer>> server =
      obs::TelemetryServer::Start(obs::TelemetryOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.value()->port());

  StatusOr<obs::HttpResponse> metrics = obs::HttpGet(endpoint, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().body.find("# TYPE service_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("le=\"+Inf\""), std::string::npos);

  StatusOr<obs::HttpResponse> health = obs::HttpGet(endpoint, "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
  // Standalone (no backend): READY iff init is ok, no workers listed.
  EXPECT_NE(health.value().body.find("\"state\":\"READY\""),
            std::string::npos);
  EXPECT_NE(health.value().body.find("\"workers_total\":0"),
            std::string::npos);

  StatusOr<obs::HttpResponse> ready = obs::HttpGet(endpoint, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready.value().status, 200);

  StatusOr<obs::HttpResponse> statz = obs::HttpGet(endpoint, "/statz");
  ASSERT_TRUE(statz.ok());
  EXPECT_EQ(statz.value().status, 200);
  EXPECT_NE(statz.value().body.find("histogram service.latency_ms"),
            std::string::npos);

  StatusOr<obs::HttpResponse> flight =
      obs::HttpGet(endpoint, "/debug/flightrecorder");
  ASSERT_TRUE(flight.ok());
  EXPECT_EQ(flight.value().status, 200);
  EXPECT_NE(flight.value().body.find("flightrecorder"), std::string::npos);

  StatusOr<obs::HttpResponse> missing = obs::HttpGet(endpoint, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
}

TEST(TelemetryServerTest, UnreadyWhenInitFails) {
  obs::TelemetryOptions options;
  options.init_status = [] {
    return Status::Internal("backend never came up");
  };
  StatusOr<std::unique_ptr<obs::TelemetryServer>> server =
      obs::TelemetryServer::Start(std::move(options));
  ASSERT_TRUE(server.ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.value()->port());
  StatusOr<obs::HttpResponse> ready = obs::HttpGet(endpoint, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready.value().status, 503);
  EXPECT_NE(ready.value().body.find("\"state\":\"UNREADY\""),
            std::string::npos);
  // /healthz stays 200 — liveness, not readiness.
  StatusOr<obs::HttpResponse> health = obs::HttpGet(endpoint, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
}

// ------------------------------------------------------------- fleet test

/// One echo round across the whole pool, to drive scatter (and redial).
Status RunEchoRound(ExecutionBackend* backend) {
  const std::vector<WorkerTask> tasks(2, WorkerTask(&EchoTaskMain));
  const std::vector<std::vector<uint8_t>> requests(2,
                                                   std::vector<uint8_t>{7});
  StatusOr<RoundResult> round = backend->RunRound(tasks, requests);
  return round.ok() ? Status::OK() : round.status();
}

TEST(TelemetryFleetTest, ScrapeCarriesWorkerSeriesAndHealthzTracksAKill) {
  RpcWorkerFarm farm;
  farm.Start(2);
  BackendOptions opts;
  opts.workers_addr = farm.workers_addr();
  StatusOr<std::shared_ptr<ExecutionBackend>> backend =
      MakeBackend(BackendKind::kRpc, opts);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();

  obs::TelemetryOptions topts;
  topts.backend = backend.value();
  topts.worker_poll_ttl_ms = 0;  // the transition test needs fresh polls
  StatusOr<std::unique_ptr<obs::TelemetryServer>> server =
      obs::TelemetryServer::Start(std::move(topts));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.value()->port());

  // Serve some traffic so worker-side instruments have values.
  ASSERT_TRUE(RunEchoRound(backend.value().get()).ok());

  // READY with both workers healthy, and the scrape re-exports each
  // worker's own registry under its endpoint label.
  StatusOr<obs::HttpResponse> health = obs::HttpGet(endpoint, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.value().body.find("\"state\":\"READY\""),
            std::string::npos);
  StatusOr<obs::HttpResponse> metrics = obs::HttpGet(endpoint, "/metrics");
  ASSERT_TRUE(metrics.ok());
  for (const std::string& worker : farm.endpoints()) {
    EXPECT_NE(metrics.value().body.find("worker=\"" + worker + "\""),
              std::string::npos)
        << "no series labeled for " << worker;
  }
  EXPECT_NE(metrics.value().body.find("worker_requests_total"),
            std::string::npos);

  // Kill worker 0. The next scrape's stats poll fails against the dead
  // endpoint, which marks it SUSPECT — the scrape doubles as the health
  // probe — so /healthz degrades within one transition.
  farm.Kill(0);
  ASSERT_TRUE(obs::HttpGet(endpoint, "/metrics").ok());
  health = obs::HttpGet(endpoint, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health.value().body.find("\"state\":\"DEGRADED\""),
            std::string::npos)
      << health.value().body;
  EXPECT_NE(health.value().body.find("\"health\":\"suspect\""),
            std::string::npos);
  // One healthy worker left: still ready.
  StatusOr<obs::HttpResponse> ready = obs::HttpGet(endpoint, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready.value().status, 200);

  // Restart on the original port; a round drives the supervisor's redial
  // and the roll-up recovers to READY.
  farm.Restart(0);
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    RunEchoRound(backend.value().get()).ToString();  // best-effort
    health = obs::HttpGet(endpoint, "/healthz");
    ASSERT_TRUE(health.ok());
    recovered = health.value().body.find("\"state\":\"READY\"") !=
                std::string::npos;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  EXPECT_TRUE(recovered) << health.value().body;

  // The flight recorder kept the whole story.
  StatusOr<obs::HttpResponse> flight =
      obs::HttpGet(endpoint, "/debug/flightrecorder");
  ASSERT_TRUE(flight.ok());
  EXPECT_NE(flight.value().body.find("healthy -> suspect"),
            std::string::npos);
  EXPECT_NE(flight.value().body.find("-> healthy (redial ok)"),
            std::string::npos);
  EXPECT_NE(flight.value().body.find("round-start"), std::string::npos);
}

}  // namespace
}  // namespace mpqopt
