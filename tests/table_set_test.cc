// Copyright 2026 mpqopt authors.

#include "common/table_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mpqopt {
namespace {

TEST(TableSetTest, EmptySet) {
  const TableSet s = TableSet::Empty();
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(TableSetTest, Singleton) {
  const TableSet s = TableSet::Single(5);
  EXPECT_FALSE(s.IsEmpty());
  EXPECT_EQ(s.Count(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Lowest(), 5);
  EXPECT_EQ(s.Highest(), 5);
}

TEST(TableSetTest, AllTables) {
  const TableSet s = TableSet::AllTables(10);
  EXPECT_EQ(s.Count(), 10);
  for (int t = 0; t < 10; ++t) EXPECT_TRUE(s.Contains(t));
  EXPECT_FALSE(s.Contains(10));
}

TEST(TableSetTest, AllTablesAtMaximumWidth) {
  const TableSet s = TableSet::AllTables(kMaxTables);
  EXPECT_EQ(s.Count(), kMaxTables);
  EXPECT_TRUE(s.Contains(63));
}

TEST(TableSetTest, SetAlgebra) {
  const TableSet a = TableSet::Single(0).With(2).With(4);
  const TableSet b = TableSet::Single(2).With(3);
  EXPECT_EQ(a.Union(b).Count(), 4);
  EXPECT_EQ(a.Intersect(b), TableSet::Single(2));
  EXPECT_EQ(a.Minus(b), TableSet::Single(0).With(4));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Minus(b).Intersects(b));
}

TEST(TableSetTest, SubsetRelations) {
  const TableSet a = TableSet::Single(1).With(3);
  const TableSet b = a.With(5);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(b.ContainsAll(a));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(TableSetTest, WithWithout) {
  TableSet s = TableSet::Empty();
  s = s.With(7);
  EXPECT_TRUE(s.Contains(7));
  s = s.Without(7);
  EXPECT_TRUE(s.IsEmpty());
  // Without on an absent table is a no-op.
  EXPECT_EQ(TableSet::Single(1).Without(2), TableSet::Single(1));
}

TEST(TableSetTest, IterationVisitsAscending) {
  const TableSet s = TableSet::Single(9).With(1).With(4);
  std::vector<int> tables;
  for (int t : s) tables.push_back(t);
  EXPECT_EQ(tables, (std::vector<int>{1, 4, 9}));
}

TEST(TableSetTest, LowestHighest) {
  const TableSet s = TableSet::Single(3).With(17).With(8);
  EXPECT_EQ(s.Lowest(), 3);
  EXPECT_EQ(s.Highest(), 17);
}

TEST(TableSetTest, ToStringFormat) {
  EXPECT_EQ(TableSet::Single(0).With(3).With(5).ToString(), "{0,3,5}");
}

TEST(SubsetEnumeratorTest, EnumeratesProperNonEmptySubsets) {
  const TableSet s = TableSet::Single(0).With(2).With(5);
  SubsetEnumerator it(s);
  std::set<uint64_t> seen;
  while (it.Next()) {
    const TableSet sub = it.current();
    EXPECT_FALSE(sub.IsEmpty());
    EXPECT_NE(sub, s);
    EXPECT_TRUE(sub.IsSubsetOf(s));
    EXPECT_TRUE(seen.insert(sub.bits()).second) << "duplicate subset";
  }
  EXPECT_EQ(seen.size(), 6u);  // 2^3 - 2
}

TEST(SubsetEnumeratorTest, EmptyAndSingletonHaveNoProperSubsets) {
  SubsetEnumerator empty(TableSet::Empty());
  EXPECT_FALSE(empty.Next());
  SubsetEnumerator single(TableSet::Single(4));
  EXPECT_FALSE(single.Next());
}

TEST(SubsetEnumeratorTest, PairHasTwoSubsets) {
  SubsetEnumerator it(TableSet::Single(1).With(3));
  int count = 0;
  while (it.Next()) ++count;
  EXPECT_EQ(count, 2);
}

TEST(TableSetHashTest, DistinctSetsUsuallyHashDistinct) {
  TableSetHash hash;
  std::set<size_t> hashes;
  for (uint64_t bits = 0; bits < 512; ++bits) {
    hashes.insert(hash(TableSet(bits)));
  }
  EXPECT_EQ(hashes.size(), 512u);
}

class SubsetCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCountTest, CountMatchesFormula) {
  const int n = GetParam();
  SubsetEnumerator it(TableSet::AllTables(n));
  int64_t count = 0;
  while (it.Next()) ++count;
  EXPECT_EQ(count, (int64_t{1} << n) - 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, SubsetCountTest,
                         ::testing::Values(2, 3, 4, 5, 8, 10, 12));

}  // namespace
}  // namespace mpqopt
