// Copyright 2026 mpqopt authors.
//
// Unit tests of the bump arena (common/arena.h) and the arena-backed
// PlanArena chunk layout (plan/plan.h): alignment, reset-for-reuse,
// ApproxBytes accounting, reference stability across growth, and deep
// copy/move semantics the plan cache depends on.

#include "common/arena.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "plan/plan.h"

namespace mpqopt {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  uint8_t* a = static_cast<uint8_t*>(arena.Allocate(3, 1));
  double* d = static_cast<double*>(arena.Allocate(sizeof(double), 8));
  uint8_t* b = static_cast<uint8_t*>(arena.Allocate(5, 1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(d, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % 8, 0u);
  // Write through every pointer; ASan (tier-1 CI) catches overlap.
  a[0] = 1;
  a[2] = 2;
  *d = 3.5;
  b[0] = 4;
  b[4] = 5;
  EXPECT_EQ(*d, 3.5);
  EXPECT_EQ(a[2], 2);
}

TEST(ArenaTest, ZeroByteAllocationsReturnDistinctPointers) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, AllocateArrayReturnsNullForZeroCount) {
  Arena arena;
  EXPECT_EQ(arena.AllocateArray<int>(0), nullptr);
  int* p = arena.AllocateArray<int>(4);
  ASSERT_NE(p, nullptr);
  p[3] = 7;
  EXPECT_EQ(p[3], 7);
}

TEST(ArenaTest, GrowsBeyondOneBlock) {
  Arena arena;
  // Far more than kMinBlockBytes: forces several growth blocks.
  std::vector<uint64_t*> slots;
  for (int i = 0; i < 1000; ++i) {
    uint64_t* p = arena.AllocateArray<uint64_t>(8);
    p[0] = static_cast<uint64_t>(i);
    slots.push_back(p);
  }
  // Earlier allocations were never moved by later growth.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(slots[i][0], static_cast<uint64_t>(i));
  }
  EXPECT_GE(arena.used_bytes(), 1000u * 8 * sizeof(uint64_t));
  EXPECT_GE(arena.ApproxBytes(), arena.used_bytes());
}

TEST(ArenaTest, OversizeAllocationGetsItsOwnBlock) {
  Arena arena;
  const size_t big = Arena::kMaxBlockBytes + 4096;
  uint8_t* p = static_cast<uint8_t*>(arena.Allocate(big, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;
  EXPECT_GE(arena.ApproxBytes(), big);
}

TEST(ArenaTest, ResetRewindsAndReusesMemory) {
  Arena arena;
  (void)arena.AllocateArray<uint64_t>(16);
  const size_t reserved_before = arena.ApproxBytes();
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  // A single-block arena keeps its block: same footprint, no new malloc.
  EXPECT_EQ(arena.ApproxBytes(), reserved_before);
  uint64_t* p = arena.AllocateArray<uint64_t>(16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.ApproxBytes(), reserved_before);
}

TEST(ArenaTest, ResetAfterGrowthRepacksIntoOneBlock) {
  Arena arena;
  for (int i = 0; i < 200; ++i) (void)arena.AllocateArray<uint64_t>(64);
  const size_t used = 200u * 64 * sizeof(uint64_t);
  arena.Reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  // The repacked arena serves the same workload without growing again.
  for (int i = 0; i < 200; ++i) (void)arena.AllocateArray<uint64_t>(64);
  EXPECT_GE(arena.ApproxBytes(), used);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena arena;
  uint64_t* p = arena.AllocateArray<uint64_t>(4);
  p[0] = 42;
  Arena moved(std::move(arena));
  EXPECT_EQ(p[0], 42u);  // storage survived the move
  EXPECT_EQ(arena.used_bytes(), 0u);  // NOLINT(bugprone-use-after-move)
  uint64_t* q = moved.AllocateArray<uint64_t>(4);
  EXPECT_NE(q, nullptr);
}

TEST(ArenaTest, SmallArenaStaysSmall) {
  // Plan-cache entries are charged ApproxBytes against byte budgets of a
  // few KB; a handful of nodes must not reserve megabytes.
  Arena arena;
  (void)arena.AllocateArray<uint64_t>(4);
  EXPECT_LE(arena.ApproxBytes(), 2 * Arena::kMinBlockBytes);
}

TEST(PlanArenaTest, NodeReferencesStableAcrossGrowth) {
  PlanArena arena;
  const CostVector cost = CostVector::Scalar(1.0);
  const PlanId first = arena.MakeScan(0, 10.0, cost);
  const PlanNode* before = &arena.node(first);
  for (int i = 1; i < 10000; ++i) {
    arena.MakeScan(i % 30, static_cast<double>(i), cost);
  }
  EXPECT_EQ(&arena.node(first), before);
  EXPECT_EQ(arena.size(), 10000u);
  EXPECT_EQ(arena.node(9999).cardinality, 9999.0);
}

TEST(PlanArenaTest, DeepCopyIsIndependent) {
  PlanArena source;
  const CostVector cost = CostVector::Scalar(2.0);
  const PlanId a = source.MakeScan(0, 5.0, cost);
  const PlanId b = source.MakeScan(1, 6.0, cost);
  const PlanId j =
      source.MakeJoin(JoinAlgorithm::kHashJoin, a, b, 30.0, cost);

  PlanArena copy = source;
  ASSERT_EQ(copy.size(), source.size());
  EXPECT_EQ(PlanToString(copy, j), PlanToString(source, j));
  // Growing the copy leaves the source untouched.
  copy.MakeScan(2, 7.0, cost);
  EXPECT_EQ(source.size(), 3u);
  EXPECT_EQ(copy.size(), 4u);
}

TEST(PlanArenaTest, CopyAssignReplacesContents) {
  const CostVector cost = CostVector::Scalar(1.0);
  PlanArena a;
  for (int i = 0; i < 100; ++i) a.MakeScan(i % 10, 1.0, cost);
  PlanArena b;
  b.MakeScan(5, 9.0, cost);
  a = b;
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.node(0).table, 5);
}

TEST(PlanArenaTest, ReserveAvoidsLaterChunkGrowth) {
  PlanArena arena;
  arena.Reserve(5000);
  const CostVector cost = CostVector::Scalar(1.0);
  const PlanId first = arena.MakeScan(0, 1.0, cost);
  const PlanNode* before = &arena.node(first);
  for (int i = 1; i < 5000; ++i) arena.MakeScan(i % 20, 1.0, cost);
  EXPECT_EQ(&arena.node(first), before);
}

TEST(PlanArenaTest, MemoryBytesTracksGrowthAndClear) {
  PlanArena arena;
  const size_t empty = arena.MemoryBytes();
  const CostVector cost = CostVector::Scalar(1.0);
  for (int i = 0; i < 1000; ++i) arena.MakeScan(i % 20, 1.0, cost);
  EXPECT_GE(arena.MemoryBytes(), 1000 * sizeof(PlanNode));
  arena.Clear();
  EXPECT_EQ(arena.size(), 0u);
  // Clear keeps (repacked) storage but never exceeds the grown footprint.
  EXPECT_GE(arena.MemoryBytes(), empty);
}

TEST(PlanArenaTest, MoveLeavesSourceEmpty) {
  PlanArena source;
  const CostVector cost = CostVector::Scalar(1.0);
  source.MakeScan(3, 4.0, cost);
  PlanArena moved(std::move(source));
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved.node(0).table, 3);
  EXPECT_EQ(source.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace mpqopt
