// Copyright 2026 mpqopt authors.

#include "sma/sma.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "common/serialize.h"
#include "mpq/mpq.h"
#include "optimizer/pruning.h"
#include "plan/plan_serde.h"
#include "plan/plan_validator.h"
#include "tests/rpc_test_util.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

SmaOptions Options(PlanSpace space, uint64_t workers) {
  SmaOptions opts;
  opts.space = space;
  opts.num_workers = workers;
  return opts;
}

/// The canonical wire bytes of a result's winning plan(s).
std::vector<uint8_t> PlanBytes(const SmaResult& result) {
  ByteWriter writer;
  SerializePlanSet(result.arena, result.best, &writer);
  return writer.Release();
}

// SMA's replicas run through the session protocol, so the hosting choice
// — including REMOTE replicas in mpqopt_worker processes over real
// sockets — must be invisible: plan cost, rounds, and the network series
// byte-for-byte identical to the default in-process run. This is the
// acceptance gate for stateful remote workers; the rpc parameter
// self-hosts loopback worker subprocesses and does NOT skip.
class SmaBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kRpc) farm_.Start(2);
  }

  std::shared_ptr<ExecutionBackend> MakeTestBackend() {
    BackendOptions options;
    options.max_threads = 2;
    options.workers_addr = farm_.workers_addr();
    StatusOr<std::shared_ptr<ExecutionBackend>> backend =
        MakeBackend(GetParam(), options);
    MPQOPT_CHECK(backend.ok());
    return std::move(backend).value();
  }

  RpcWorkerFarm farm_;
};

TEST_P(SmaBackendTest, MatchesDefaultBackendByteForByte) {
  const Query q = RandomQuery(9, 301);
  SmaOptions base = Options(PlanSpace::kLinear, 3);
  StatusOr<SmaResult> reference = SmaOptimize(q, base);
  ASSERT_TRUE(reference.ok());

  SmaOptions with_backend = base;
  with_backend.backend = MakeTestBackend();
  StatusOr<SmaResult> result = SmaOptimize(q, with_backend);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(PlanBytes(result.value()), PlanBytes(reference.value()));
  EXPECT_DOUBLE_EQ(
      result.value().arena.node(result.value().best[0]).cost.time(),
      reference.value().arena.node(reference.value().best[0]).cost.time());
  EXPECT_EQ(result.value().rounds, reference.value().rounds);
  EXPECT_EQ(result.value().network_bytes, reference.value().network_bytes);
  EXPECT_EQ(result.value().network_messages,
            reference.value().network_messages);
  EXPECT_EQ(result.value().max_worker_memo_sets,
            reference.value().max_worker_memo_sets);
}

TEST_P(SmaBackendTest, MultiObjectiveFrontierMatchesByteForByte) {
  const Query q = RandomQuery(7, 303);
  SmaOptions base = Options(PlanSpace::kLinear, 4);
  base.objective = Objective::kTimeAndBuffer;
  base.alpha = 1.5;
  StatusOr<SmaResult> reference = SmaOptimize(q, base);
  ASSERT_TRUE(reference.ok());

  SmaOptions with_backend = base;
  with_backend.backend = MakeTestBackend();
  StatusOr<SmaResult> result = SmaOptimize(q, with_backend);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result.value().best.size(), reference.value().best.size());
  EXPECT_EQ(PlanBytes(result.value()), PlanBytes(reference.value()));
  EXPECT_EQ(result.value().network_bytes, reference.value().network_bytes);
  EXPECT_EQ(result.value().network_messages,
            reference.value().network_messages);
}

TEST_P(SmaBackendTest, BushySpaceMatchesSerialOptimum) {
  const Query q = RandomQuery(7, 305);
  DpConfig config;
  config.space = PlanSpace::kBushy;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  SmaOptions opts = Options(PlanSpace::kBushy, 3);
  opts.backend = MakeTestBackend();
  StatusOr<SmaResult> result = SmaOptimize(q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(
      result.value().arena.node(result.value().best[0]).cost.time(),
      serial.value().arena.node(serial.value().best[0]).cost.time());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SmaBackendTest,
                         ::testing::Values(BackendKind::kThread,
                                           BackendKind::kProcess,
                                           BackendKind::kAsyncBatch,
                                           BackendKind::kRpc),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

TEST(SmaTest, FindsSerialOptimumLinear) {
  const Query q = RandomQuery(8, 61);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  for (uint64_t m : {1u, 2u, 3u, 7u}) {
    StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kLinear, m));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_DOUBLE_EQ(
        result.value().arena.node(result.value().best[0]).cost.time(),
        serial.value().arena.node(serial.value().best[0]).cost.time())
        << m;
  }
}

TEST(SmaTest, FindsSerialOptimumBushy) {
  const Query q = RandomQuery(7, 63);
  DpConfig config;
  config.space = PlanSpace::kBushy;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kBushy, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(
      result.value().arena.node(result.value().best[0]).cost.time(),
      serial.value().arena.node(serial.value().best[0]).cost.time());
}

TEST(SmaTest, AgreesWithMpq) {
  const Query q = RandomQuery(10, 65);
  MpqOptions mpq_opts;
  mpq_opts.space = PlanSpace::kLinear;
  mpq_opts.num_workers = 8;
  MpqOptimizer mpq(mpq_opts);
  StatusOr<MpqResult> mpq_result = mpq.Optimize(q);
  StatusOr<SmaResult> sma_result =
      SmaOptimize(q, Options(PlanSpace::kLinear, 8));
  ASSERT_TRUE(mpq_result.ok() && sma_result.ok());
  EXPECT_DOUBLE_EQ(
      mpq_result.value().arena.node(mpq_result.value().best[0]).cost.time(),
      sma_result.value().arena.node(sma_result.value().best[0]).cost.time());
}

TEST(SmaTest, PlanValidates) {
  const Query q = RandomQuery(8, 67);
  StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kLinear, 4));
  ASSERT_TRUE(result.ok());
  const CostModel model(Objective::kTime);
  PlanValidationOptions vopts;
  vopts.require_left_deep = true;
  EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0], q,
                           model, vopts)
                  .ok());
}

TEST(SmaTest, RoundsEqualLevels) {
  const Query q = RandomQuery(8, 69);
  StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kLinear, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rounds, 7);  // levels 2..8
}

TEST(SmaTest, NetworkGrowsWithWorkers) {
  // The broadcastmakes SMA traffic grow linearly in m on top of an
  // exponential-in-n base — the separation from MPQ in Figure 1.
  const Query q = RandomQuery(10, 71);
  uint64_t bytes1 = 0, bytes8 = 0;
  {
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 1));
    ASSERT_TRUE(r.ok());
    bytes1 = r.value().network_bytes;
  }
  {
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 8));
    ASSERT_TRUE(r.ok());
    bytes8 = r.value().network_bytes;
  }
  EXPECT_GT(bytes8, bytes1 * 4);
}

TEST(SmaTest, NetworkGrowsExponentiallyWithQuerySize) {
  uint64_t previous = 0;
  for (int n : {8, 10, 12}) {
    const Query q = RandomQuery(n, 73);
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 4));
    ASSERT_TRUE(r.ok());
    if (previous > 0) EXPECT_GT(r.value().network_bytes, 2 * previous);
    previous = r.value().network_bytes;
  }
}

TEST(SmaTest, SmaTrafficExceedsMpqTraffic) {
  const Query q = RandomQuery(12, 75);
  StatusOr<SmaResult> sma = SmaOptimize(q, Options(PlanSpace::kLinear, 8));
  MpqOptions mpq_opts;
  mpq_opts.space = PlanSpace::kLinear;
  mpq_opts.num_workers = 8;
  MpqOptimizer mpq(mpq_opts);
  StatusOr<MpqResult> mpq_result = mpq.Optimize(q);
  ASSERT_TRUE(sma.ok() && mpq_result.ok());
  // The paper reports SMA needing orders of magnitude more bytes.
  EXPECT_GT(sma.value().network_bytes,
            mpq_result.value().network_bytes * 10);
}

TEST(SmaTest, MemoSizeIndependentOfWorkers) {
  const Query q = RandomQuery(10, 77);
  for (uint64_t m : {1u, 4u, 16u}) {
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, m));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().max_worker_memo_sets, 1 << 10);
  }
}

TEST(SmaTest, RejectsOversizedQuery) {
  const Query q = RandomQuery(12, 79);
  SmaOptions opts = Options(PlanSpace::kLinear, 2);
  opts.max_tables = 10;
  EXPECT_EQ(SmaOptimize(q, opts).status().code(), StatusCode::kOutOfRange);
}

TEST(SmaTest, SingleTableQuery) {
  const Query q = RandomQuery(1, 81);
  StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().arena.node(r.value().best[0]).IsScan());
  EXPECT_EQ(r.value().rounds, 0);
}

TEST(SmaTest, MultiObjectiveFrontierCoversSerial) {
  const Query q = RandomQuery(7, 83);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = 1.0;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());

  SmaOptions opts = Options(PlanSpace::kLinear, 4);
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 1.0;
  StatusOr<SmaResult> result = SmaOptimize(q, opts);
  ASSERT_TRUE(result.ok());

  std::vector<CostVector> sma_frontier, serial_frontier;
  for (PlanId id : result.value().best) {
    sma_frontier.push_back(result.value().arena.node(id).cost);
  }
  for (PlanId id : serial.value().best) {
    serial_frontier.push_back(serial.value().arena.node(id).cost);
  }
  EXPECT_TRUE(AlphaCovers(sma_frontier, serial_frontier, 1.0 + 1e-12));
  EXPECT_TRUE(AlphaCovers(serial_frontier, sma_frontier, 1.0 + 1e-12));
}

}  // namespace
}  // namespace mpqopt
