// Copyright 2026 mpqopt authors.

#include "sma/sma.h"

#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "optimizer/pruning.h"
#include "plan/plan_validator.h"

namespace mpqopt {
namespace {

Query RandomQuery(int n, uint64_t seed) {
  GeneratorOptions opts;
  opts.shape = JoinGraphShape::kStar;
  QueryGenerator gen(opts, seed);
  return gen.Generate(n);
}

SmaOptions Options(PlanSpace space, uint64_t workers) {
  SmaOptions opts;
  opts.space = space;
  opts.num_workers = workers;
  return opts;
}

TEST(SmaTest, FindsSerialOptimumLinear) {
  const Query q = RandomQuery(8, 61);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  for (uint64_t m : {1u, 2u, 3u, 7u}) {
    StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kLinear, m));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_DOUBLE_EQ(
        result.value().arena.node(result.value().best[0]).cost.time(),
        serial.value().arena.node(serial.value().best[0]).cost.time())
        << m;
  }
}

TEST(SmaTest, FindsSerialOptimumBushy) {
  const Query q = RandomQuery(7, 63);
  DpConfig config;
  config.space = PlanSpace::kBushy;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());
  StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kBushy, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(
      result.value().arena.node(result.value().best[0]).cost.time(),
      serial.value().arena.node(serial.value().best[0]).cost.time());
}

TEST(SmaTest, AgreesWithMpq) {
  const Query q = RandomQuery(10, 65);
  MpqOptions mpq_opts;
  mpq_opts.space = PlanSpace::kLinear;
  mpq_opts.num_workers = 8;
  MpqOptimizer mpq(mpq_opts);
  StatusOr<MpqResult> mpq_result = mpq.Optimize(q);
  StatusOr<SmaResult> sma_result =
      SmaOptimize(q, Options(PlanSpace::kLinear, 8));
  ASSERT_TRUE(mpq_result.ok() && sma_result.ok());
  EXPECT_DOUBLE_EQ(
      mpq_result.value().arena.node(mpq_result.value().best[0]).cost.time(),
      sma_result.value().arena.node(sma_result.value().best[0]).cost.time());
}

TEST(SmaTest, PlanValidates) {
  const Query q = RandomQuery(8, 67);
  StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kLinear, 4));
  ASSERT_TRUE(result.ok());
  const CostModel model(Objective::kTime);
  PlanValidationOptions vopts;
  vopts.require_left_deep = true;
  EXPECT_TRUE(ValidatePlan(result.value().arena, result.value().best[0], q,
                           model, vopts)
                  .ok());
}

TEST(SmaTest, RoundsEqualLevels) {
  const Query q = RandomQuery(8, 69);
  StatusOr<SmaResult> result = SmaOptimize(q, Options(PlanSpace::kLinear, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rounds, 7);  // levels 2..8
}

TEST(SmaTest, NetworkGrowsWithWorkers) {
  // The broadcastmakes SMA traffic grow linearly in m on top of an
  // exponential-in-n base — the separation from MPQ in Figure 1.
  const Query q = RandomQuery(10, 71);
  uint64_t bytes1 = 0, bytes8 = 0;
  {
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 1));
    ASSERT_TRUE(r.ok());
    bytes1 = r.value().network_bytes;
  }
  {
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 8));
    ASSERT_TRUE(r.ok());
    bytes8 = r.value().network_bytes;
  }
  EXPECT_GT(bytes8, bytes1 * 4);
}

TEST(SmaTest, NetworkGrowsExponentiallyWithQuerySize) {
  uint64_t previous = 0;
  for (int n : {8, 10, 12}) {
    const Query q = RandomQuery(n, 73);
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 4));
    ASSERT_TRUE(r.ok());
    if (previous > 0) EXPECT_GT(r.value().network_bytes, 2 * previous);
    previous = r.value().network_bytes;
  }
}

TEST(SmaTest, SmaTrafficExceedsMpqTraffic) {
  const Query q = RandomQuery(12, 75);
  StatusOr<SmaResult> sma = SmaOptimize(q, Options(PlanSpace::kLinear, 8));
  MpqOptions mpq_opts;
  mpq_opts.space = PlanSpace::kLinear;
  mpq_opts.num_workers = 8;
  MpqOptimizer mpq(mpq_opts);
  StatusOr<MpqResult> mpq_result = mpq.Optimize(q);
  ASSERT_TRUE(sma.ok() && mpq_result.ok());
  // The paper reports SMA needing orders of magnitude more bytes.
  EXPECT_GT(sma.value().network_bytes,
            mpq_result.value().network_bytes * 10);
}

TEST(SmaTest, MemoSizeIndependentOfWorkers) {
  const Query q = RandomQuery(10, 77);
  for (uint64_t m : {1u, 4u, 16u}) {
    StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, m));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().max_worker_memo_sets, 1 << 10);
  }
}

TEST(SmaTest, RejectsOversizedQuery) {
  const Query q = RandomQuery(12, 79);
  SmaOptions opts = Options(PlanSpace::kLinear, 2);
  opts.max_tables = 10;
  EXPECT_EQ(SmaOptimize(q, opts).status().code(), StatusCode::kOutOfRange);
}

TEST(SmaTest, SingleTableQuery) {
  const Query q = RandomQuery(1, 81);
  StatusOr<SmaResult> r = SmaOptimize(q, Options(PlanSpace::kLinear, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().arena.node(r.value().best[0]).IsScan());
  EXPECT_EQ(r.value().rounds, 0);
}

TEST(SmaTest, MultiObjectiveFrontierCoversSerial) {
  const Query q = RandomQuery(7, 83);
  DpConfig config;
  config.space = PlanSpace::kLinear;
  config.objective = Objective::kTimeAndBuffer;
  config.alpha = 1.0;
  StatusOr<DpResult> serial = OptimizeSerial(q, config);
  ASSERT_TRUE(serial.ok());

  SmaOptions opts = Options(PlanSpace::kLinear, 4);
  opts.objective = Objective::kTimeAndBuffer;
  opts.alpha = 1.0;
  StatusOr<SmaResult> result = SmaOptimize(q, opts);
  ASSERT_TRUE(result.ok());

  std::vector<CostVector> sma_frontier, serial_frontier;
  for (PlanId id : result.value().best) {
    sma_frontier.push_back(result.value().arena.node(id).cost);
  }
  for (PlanId id : serial.value().best) {
    serial_frontier.push_back(serial.value().arena.node(id).cost);
  }
  EXPECT_TRUE(AlphaCovers(sma_frontier, serial_frontier, 1.0 + 1e-12));
  EXPECT_TRUE(AlphaCovers(serial_frontier, sma_frontier, 1.0 + 1e-12));
}

}  // namespace
}  // namespace mpqopt
