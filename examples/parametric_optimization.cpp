// Copyright 2026 mpqopt authors.
//
// Parametric query optimization: the cardinality of one input table is
// unknown until run time (think: a filter whose selectivity depends on a
// query parameter). Instead of optimizing for one guess, the parametric
// optimizer returns the LOWER ENVELOPE — every plan that is optimal for
// some parameter value, with its winning range — so the executor can pick
// the right plan the moment the parameter becomes known, without
// re-optimizing. Partitioned across workers with the very same
// plan-space decomposition as the other optimizer variants.

#include <cstdio>

#include "catalog/generator.h"
#include "optimizer/pqo.h"
#include "plan/plan.h"

using namespace mpqopt;

int main() {
  GeneratorOptions gen_opts;
  gen_opts.shape = JoinGraphShape::kStar;
  QueryGenerator generator(gen_opts, /*seed=*/7);
  const Query query = generator.Generate(8);

  PqoConfig config;
  config.space = PlanSpace::kBushy;
  config.parametric_table = 0;  // the fact table's size is unknown
  config.variability = 99.0;    // between 1x and 100x the base estimate

  std::printf(
      "8-table star query; table R0's cardinality = base * (1 + 99*theta)\n"
      "for an unknown theta in [0, 1] (a 100x swing).\n\n");

  StatusOr<PqoResult> serial =
      RunParametricDp(query, ConstraintSet::None(config.space), config);
  if (!serial.ok()) {
    std::fprintf(stderr, "PQO failed: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }
  std::printf("parametric optimal set (%zu plans):\n",
              serial.value().plans.size());
  for (const PqoPlan& plan : serial.value().plans) {
    std::printf("  theta in [%.3f, %.3f):  cost(theta) = %.3g + %.3g*theta\n",
                plan.theta_begin, plan.theta_end, plan.cost.constant,
                plan.cost.slope);
    std::printf("    %s\n",
                PlanToString(serial.value().arena, plan.plan).c_str());
  }

  // The same result, computed by independent plan-space partitions and
  // merged with an envelope-based final prune at the master.
  const uint64_t partitions = MaxWorkers(query.num_tables(), config.space);
  StatusOr<PqoResult> parallel =
      ParallelParametricOptimize(query, partitions, config);
  if (!parallel.ok()) {
    std::fprintf(stderr, "parallel PQO failed: %s\n",
                 parallel.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nparallel (%llu partitions): %zu plans on the merged envelope — the\n"
      "same envelope, each partition contributed its local optimum.\n",
      static_cast<unsigned long long>(partitions),
      parallel.value().plans.size());
  return 0;
}
