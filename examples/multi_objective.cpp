// Copyright 2026 mpqopt authors.
//
// Multi-objective query optimization: approximate the Pareto frontier of
// (execution time, buffer space) — the paper's second evaluation series.
// Demonstrates the pluggable pruning function: the SAME parallel
// algorithm runs with Pareto pruning instead of single-plan pruning, each
// worker returns its partition-local frontier, and the master merges
// them. Shows the precision/size trade-off of the approximation factor.

#include <cstdio>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "plan/plan.h"

using namespace mpqopt;

int main() {
  GeneratorOptions gen_opts;
  gen_opts.shape = JoinGraphShape::kStar;
  QueryGenerator generator(gen_opts, /*seed=*/42);
  const Query query = generator.Generate(12);

  std::printf(
      "Pareto-optimal plans of a 12-table query, metrics = (time, buffer)\n");
  for (const double alpha : {1.0, 1.5, 10.0}) {
    MpqOptions opts;
    opts.space = PlanSpace::kLinear;
    opts.objective = Objective::kTimeAndBuffer;
    opts.alpha = alpha;
    opts.num_workers = 16;
    MpqOptimizer mpq(opts);
    StatusOr<MpqResult> result = mpq.Optimize(query);
    if (!result.ok()) {
      std::fprintf(stderr, "optimization failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const MpqResult& r = result.value();
    std::printf("\nalpha = %-4.1f -> %zu frontier plans, %llu network bytes\n",
                alpha, r.best.size(),
                static_cast<unsigned long long>(r.network_bytes));
    // Print the frontier sorted as returned: each plan trades execution
    // time against peak buffer consumption.
    int shown = 0;
    for (PlanId id : r.best) {
      const PlanNode& node = r.arena.node(id);
      std::printf("  time %12.0f  buffer %12.0f", node.cost[0], node.cost[1]);
      if (alpha == 1.0 && shown < 3) {
        std::printf("  %s", PlanToString(r.arena, id).c_str());
      }
      std::printf("\n");
      if (++shown >= 8) {
        std::printf("  ... (%zu more)\n", r.best.size() - 8);
        break;
      }
    }
  }
  std::printf(
      "\nLarger alpha coarsens the frontier (fewer plans, less network\n"
      "traffic, faster pruning) while guaranteeing that for every possible\n"
      "plan with cost vector c some returned plan costs at most alpha*c\n"
      "per metric.\n");
  return 0;
}
