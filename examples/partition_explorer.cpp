// Copyright 2026 mpqopt authors.
//
// Partition explorer: a walkthrough of the paper's plan-space
// partitioning scheme on the worked examples of Section 4 — how a
// partition id decodes into join-order constraints (Example 1), which
// join results remain admissible (Example 2), and how partition sizes
// shrink as workers double.

#include <cstdio>

#include "partition/constraints.h"
#include "partition/partition_index.h"

using namespace mpqopt;

int main() {
  // --- Paper Example 1: R ⋈ S ⋈ T ⋈ U over four workers. -------------
  std::printf("Example 1: 4-table query, 4 workers, linear plan space\n");
  for (uint64_t part = 0; part < 4; ++part) {
    StatusOr<ConstraintSet> c =
        ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, part, 4);
    if (!c.ok()) return 1;
    const PartitionIndex idx(4, c.value());
    std::printf("  partition %llu: constraints {%s}, %lld admissible sets\n",
                static_cast<unsigned long long>(part),
                c.value().ToString().c_str(),
                static_cast<long long>(idx.size()));
  }

  // --- Paper Example 2: admissible join results under two constraints.
  std::printf(
      "\nExample 2: constraints Q0 < Q1, Q3 < Q2 admit exactly these "
      "results:\n  ");
  {
    StatusOr<ConstraintSet> c =
        ConstraintSet::FromPartitionId(4, PlanSpace::kLinear, 2, 4);
    if (!c.ok()) return 1;
    const PartitionIndex idx(4, c.value());
    idx.ForEachSet([&](TableSet s, int64_t) {
      std::printf("%s ", s.ToString().c_str());
    });
    std::printf("\n  (the paper's Example 2 lists the same 9 sets, with\n"
                "  its tables Q1..Q4 renamed to our 0-based Q0..Q3)\n");
  }

  // --- Scaling of the maximal parallelism with the query size. --------
  std::printf("\nMaximal exploitable workers by query size:\n");
  std::printf("  %6s %14s %14s\n", "tables", "linear 2^(n/2)",
              "bushy 2^(n/3)");
  for (int n : {8, 12, 16, 20, 24}) {
    std::printf("  %6d %14llu %14llu\n", n,
                static_cast<unsigned long long>(MaxWorkers(n,
                                                           PlanSpace::kLinear)),
                static_cast<unsigned long long>(MaxWorkers(n,
                                                           PlanSpace::kBushy)));
  }

  // --- Per-constraint reduction of the per-worker plan space. ---------
  std::printf(
      "\nPer-worker admissible join results, 12-table query (Theorems 2 "
      "and 3):\n");
  std::printf("  %8s %16s %16s\n", "workers", "linear (3/4)^l",
              "bushy (7/8)^l");
  for (int l = 0; l <= 4; ++l) {
    StatusOr<ConstraintSet> lin = ConstraintSet::FromPartitionId(
        12, PlanSpace::kLinear, 0, uint64_t{1} << l);
    StatusOr<ConstraintSet> bush = ConstraintSet::FromPartitionId(
        12, PlanSpace::kBushy, 0, uint64_t{1} << l);
    if (!lin.ok() || !bush.ok()) return 1;
    std::printf("  %8llu %16lld %16lld\n",
                static_cast<unsigned long long>(uint64_t{1} << l),
                static_cast<long long>(PartitionIndex(12, lin.value()).size()),
                static_cast<long long>(PartitionIndex(12, bush.value()).size()));
  }
  std::printf(
      "\nEach doubling of workers halves nothing and wastes nothing: the\n"
      "whole plan space stays covered while every worker's share shrinks\n"
      "by the provably optimal factors 3/4 (linear) and 7/8 (bushy).\n");
  return 0;
}
