// Copyright 2026 mpqopt authors.
//
// Distributed optimization on the simulated shared-nothing cluster: the
// scenario of the paper's introduction — a query that takes long to
// optimize on a single node, parallelized over the same cluster that will
// later execute it. Shows the one-round master/worker protocol, the
// modeled cluster time, per-worker times, memo sizes, and network bytes
// for increasing worker counts.

#include <cstdio>

#include "catalog/generator.h"
#include "mpq/mpq.h"
#include "plan/plan.h"

using namespace mpqopt;

int main() {
  // A 16-table star-schema query generated with the Steinbrunn et al.
  // benchmark distribution used throughout the paper's evaluation.
  GeneratorOptions gen_opts;
  gen_opts.shape = JoinGraphShape::kStar;
  QueryGenerator generator(gen_opts, /*seed=*/2016);
  const Query query = generator.Generate(16);

  std::printf("Optimizing a 16-table star query over a simulated cluster\n");
  std::printf("(1 GbE cluster model calibrated to the paper, see net/network_model.h)\n\n");
  std::printf("%8s %12s %12s %14s %12s %10s\n", "workers", "time(ms)",
              "W-time(ms)", "memo(sets)", "net(bytes)", "speedup");

  double baseline = 0;
  for (uint64_t m = 1; m <= UsableWorkers(16, PlanSpace::kLinear, 256);
       m *= 4) {
    MpqOptions opts;
    opts.space = PlanSpace::kLinear;
    opts.num_workers = m;
    MpqOptimizer mpq(opts);
    StatusOr<MpqResult> result = mpq.Optimize(query);
    if (!result.ok()) {
      std::fprintf(stderr, "optimization failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const MpqResult& r = result.value();
    if (m == 1) baseline = r.max_worker_seconds;
    std::printf("%8llu %12.2f %12.2f %14lld %12llu %9.2fx\n",
                static_cast<unsigned long long>(m),
                r.simulated_seconds * 1e3, r.max_worker_seconds * 1e3,
                static_cast<long long>(r.max_worker_memo_sets),
                static_cast<unsigned long long>(r.network_bytes),
                r.simulated_seconds > 0
                    ? baseline / r.simulated_seconds
                    : 0.0);
    if (m == UsableWorkers(16, PlanSpace::kLinear, 256)) {
      std::printf("\nbest plan: %s\n",
                  PlanToString(r.arena, r.best[0]).c_str());
      std::printf("est. cost: %.0f work units\n",
                  r.arena.node(r.best[0]).cost.time());
    }
  }
  std::printf(
      "\nEvery worker returned the optimum of its own plan-space\n"
      "partition after a single request/response round; the master only\n"
      "compared %s-returned plans (no memo sharing, no extra rounds).\n",
      "worker");
  return 0;
}
