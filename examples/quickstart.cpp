// Copyright 2026 mpqopt authors.
//
// Quickstart: define a small join query by hand, optimize it with the
// classical serial DP (== MPQ with one worker) in both plan spaces, and
// print the chosen plans. Start here to learn the public API:
//
//   Query             — tables + statistics + join predicates
//   DpConfig          — plan space, objective, cost-model knobs
//   OptimizeSerial()  — classical dynamic-programming optimization
//   PlanToString()    — render the resulting operator tree

#include <cstdio>

#include "catalog/query.h"
#include "optimizer/dp.h"
#include "plan/plan.h"

using namespace mpqopt;

int main() {
  // A 4-table star query: fact table R0 joined with three dimensions.
  std::vector<TableInfo> tables(4);
  tables[0] = {1000000.0, {100000.0, 5000.0}, "fact"};
  tables[1] = {5000.0, {5000.0}, "dim_customer"};
  tables[2] = {200.0, {200.0}, "dim_region"};
  tables[3] = {100000.0, {100000.0}, "dim_product"};

  std::vector<JoinPredicate> predicates;
  predicates.push_back({0, 1, 1, 0, 1.0 / 5000.0});    // fact ⋈ customer
  predicates.push_back({1, 0, 2, 0, 1.0 / 5000.0});    // customer ⋈ region
  predicates.push_back({0, 0, 3, 0, 1.0 / 100000.0});  // fact ⋈ product
  const Query query(std::move(tables), std::move(predicates));

  std::printf("%s\n", query.ToString().c_str());

  for (const PlanSpace space : {PlanSpace::kLinear, PlanSpace::kBushy}) {
    DpConfig config;
    config.space = space;
    StatusOr<DpResult> result = OptimizeSerial(query, config);
    if (!result.ok()) {
      std::fprintf(stderr, "optimization failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const DpResult& dp = result.value();
    const PlanNode& root = dp.arena.node(dp.best[0]);
    std::printf("%s plan space:\n", PlanSpaceName(space));
    std::printf("  best plan   %s\n",
                PlanToString(dp.arena, dp.best[0]).c_str());
    std::printf("  est. cost   %.0f work units\n", root.cost.time());
    std::printf("  est. rows   %.0f\n", root.cardinality);
    std::printf("  table sets  %lld admissible, %lld splits tried\n\n",
                static_cast<long long>(dp.stats.admissible_sets),
                static_cast<long long>(dp.stats.splits_tried));
  }
  return 0;
}
