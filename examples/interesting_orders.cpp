// Copyright 2026 mpqopt authors.
//
// Interesting orders: the classical Selinger refinement, here combined
// with MPQ's plan-space partitioning (the extension direction the paper
// sketches in Section 5.4). A chain query joining on one shared attribute
// class rewards plans that sort once and merge repeatedly; the
// order-aware optimizer finds them, the order-blind one cannot.

#include <cstdio>

#include "mpq/mpq.h"
#include "optimizer/dp.h"
#include "optimizer/orders.h"
#include "plan/plan.h"

using namespace mpqopt;

int main() {
  // Five large tables chained on the same attribute class:
  // R0.a = R1.a = R2.a = R3.a = R4.a (transitively merged).
  std::vector<TableInfo> tables(5);
  for (int i = 0; i < 5; ++i) {
    tables[i].cardinality = 50000;
    tables[i].attribute_domains = {50.0};
    tables[i].name = "R" + std::to_string(i);
  }
  std::vector<JoinPredicate> predicates;
  for (int i = 0; i + 1 < 5; ++i) {
    predicates.push_back({i, 0, i + 1, 0, 1.0 / 50.0});
  }
  const Query query(std::move(tables), std::move(predicates));

  const OrderClasses orders(query);
  std::printf("order classes in this query: %d ", orders.num_classes());
  std::printf("(all five join attributes share class %d)\n\n",
              orders.ClassOf(0, 0));

  for (const bool io : {false, true}) {
    DpConfig config;
    config.space = PlanSpace::kBushy;
    config.interesting_orders = io;
    StatusOr<DpResult> result = OptimizeSerial(query, config);
    if (!result.ok()) {
      std::fprintf(stderr, "optimization failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const DpResult& dp = result.value();
    std::printf("%s optimizer:\n", io ? "order-aware" : "order-blind");
    std::printf("  plan  %s\n", PlanToString(dp.arena, dp.best[0]).c_str());
    std::printf("  cost  %.0f work units\n\n",
                dp.arena.node(dp.best[0]).cost.time());
  }

  // The same extension runs distributed, unchanged: partitioning
  // constrains table sets, orders refine plan properties — orthogonal.
  MpqOptions opts;
  opts.space = PlanSpace::kBushy;
  opts.interesting_orders = true;
  opts.num_workers = UsableWorkers(5, PlanSpace::kBushy, 64);
  MpqOptimizer mpq(opts);
  StatusOr<MpqResult> result = mpq.Optimize(query);
  if (!result.ok()) {
    std::fprintf(stderr, "MPQ failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "MPQ with %llu workers and interesting orders finds the same "
      "optimum:\n  cost  %.0f work units, %llu bytes on the wire\n",
      static_cast<unsigned long long>(opts.num_workers),
      result.value().arena.node(result.value().best[0]).cost.time(),
      static_cast<unsigned long long>(result.value().network_bytes));
  return 0;
}
